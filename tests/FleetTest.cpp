//===- FleetTest.cpp - Fleet service: triage, campaigns, cache, persistence ===//
//
// Covers the src/fleet/ subsystem:
//  - FailureSignature bucketing: schedule/thread-independent identity;
//    distinct bugs never share a bucket, reoccurrences always do.
//  - FleetScheduler: dedup + occurrence-ordered triage; same root seed =>
//    byte-identical per-campaign test cases at any worker count.
//  - Shared solver cache: cached answers equal fresh solves (also across
//    distinct ExprContexts), hit/eviction counters move.
//  - Persistence: save/load round-trips campaigns; a resumed scheduler does
//    not re-run completed campaigns.
//  - Rng::split: deterministic, parent-preserving, statistically sane.
//
//===----------------------------------------------------------------------===//

#include "fleet/FleetPersist.h"
#include "fleet/FleetScheduler.h"
#include "solver/SolverCache.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <unistd.h>

using namespace er;

namespace {

/// Workloads whose campaigns reconstruct in milliseconds (keeps the fleet
/// tests tier-1 friendly); Memcached/Matrixssl/PHP stall at least once, so
/// their campaigns exercise multi-iteration reconstruction and the cache.
const char *FastCorpus[] = {"Bash-108885", "SQLite-4e8e485",
                            "Matrixssl-2014-1569", "Memcached-2019-11596",
                            "PHP-2012-2386"};

FleetConfig fastConfig(unsigned Jobs, uint64_t RootSeed = 20260807) {
  FleetConfig FC;
  FC.Jobs = Jobs;
  FC.RootSeed = RootSeed;
  return FC;
}

void harvestFastCorpus(FleetScheduler &Sched, unsigned Runs = 80) {
  for (const char *Id : FastCorpus)
    Sched.harvest(*findBug(Id), Runs, /*MachineId=*/1);
}

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "/" + Name;
}

//===----------------------------------------------------------------------===//
// FailureSignature
//===----------------------------------------------------------------------===//

FailureRecord record(FailureKind Kind, unsigned Instr,
                     std::vector<unsigned> Stack, uint32_t Tid = 0,
                     std::string Msg = "") {
  FailureRecord R;
  R.Kind = Kind;
  R.InstrGlobalId = Instr;
  R.CallStack = std::move(Stack);
  R.Tid = Tid;
  R.Message = std::move(Msg);
  return R;
}

TEST(FailureSignature, ExcludesScheduleDependentFields) {
  // Same bug, observed on different threads with different messages (what
  // two different schedule seeds produce): one bucket.
  auto A = FailureSignature::of(
      record(FailureKind::UseAfterFree, 42, {7, 9}, /*Tid=*/0, "use after free"));
  auto B = FailureSignature::of(
      record(FailureKind::UseAfterFree, 42, {7, 9}, /*Tid=*/3, "worker died"));
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.Digest, B.Digest);
}

TEST(FailureSignature, DistinctBugsDiffer) {
  auto Base = FailureSignature::of(record(FailureKind::NullDeref, 42, {7, 9}));
  // Different kind at the same site.
  EXPECT_NE(Base.Digest,
            FailureSignature::of(record(FailureKind::OutOfBounds, 42, {7, 9}))
                .Digest);
  // Different faulting site.
  EXPECT_NE(Base.Digest,
            FailureSignature::of(record(FailureKind::NullDeref, 43, {7, 9}))
                .Digest);
  // Different call path to the same site.
  EXPECT_NE(Base.Digest,
            FailureSignature::of(record(FailureKind::NullDeref, 42, {8, 9}))
                .Digest);
  // Prefix call path.
  EXPECT_NE(Base.Digest,
            FailureSignature::of(record(FailureKind::NullDeref, 42, {7}))
                .Digest);
}

TEST(FailureSignature, DistinctWorkloadBugsDoNotCollide) {
  // Harvest two unrelated workloads; every cross-workload bucket pair must
  // have distinct signatures.
  FleetScheduler SchedA(fastConfig(1)), SchedB(fastConfig(1));
  ASSERT_GT(SchedA.harvest(*findBug("Bash-108885"), 200, 1), 0u);
  ASSERT_GT(SchedB.harvest(*findBug("SQLite-4e8e485"), 200, 1), 0u);
  for (const Campaign &CA : SchedA.getCampaigns())
    for (const Campaign &CB : SchedB.getCampaigns()) {
      EXPECT_NE(CA.Sig, CB.Sig);
      EXPECT_NE(CA.Sig.Digest, CB.Sig.Digest);
    }
}

TEST(FailureSignature, SameBugAcrossScheduleSeedsCollides) {
  // The pbzip2-style use-after-free only fails under particular
  // interleavings; collect occurrences under many distinct schedule seeds
  // and check they all land in one bucket.
  const BugSpec &Spec = *findBug("Pbzip2");
  auto M = compileBug(Spec);
  Rng R(7);
  FailureSignature First;
  unsigned Seen = 0;
  uint64_t FirstSeed = 0;
  bool DistinctSeeds = false;
  for (int Try = 0; Try < 4000 && Seen < 4; ++Try) {
    ProgramInput In = Spec.ProductionInput(R);
    VmConfig VC;
    VC.ChunkSize = Spec.VmChunkSize;
    VC.ScheduleSeed = R.next();
    Interpreter VM(*M, VC);
    RunResult RR = VM.run(In);
    if (RR.Status != ExitStatus::Failure)
      continue;
    FailureSignature S = FailureSignature::of(RR.Failure);
    if (Seen == 0) {
      First = S;
      FirstSeed = VC.ScheduleSeed;
    } else {
      EXPECT_EQ(First, S) << "occurrence " << Seen
                          << " bucketed differently: " << S.describe();
      DistinctSeeds |= VC.ScheduleSeed != FirstSeed;
    }
    ++Seen;
  }
  ASSERT_GE(Seen, 2u) << "bug did not reoccur";
  EXPECT_TRUE(DistinctSeeds);
}

//===----------------------------------------------------------------------===//
// FleetScheduler
//===----------------------------------------------------------------------===//

TEST(FleetScheduler, DedupsAndTriagesByOccurrenceCount) {
  FleetScheduler Sched(fastConfig(1));
  auto Hot = record(FailureKind::NullDeref, 10, {1});
  auto Cold = record(FailureKind::OutOfBounds, 20, {2});
  Sched.submit({"no-such-workload", Cold});
  for (int I = 0; I < 3; ++I)
    Sched.submit({"no-such-workload", Hot});
  ASSERT_EQ(Sched.numCampaigns(), 2u);

  FleetReport FR = Sched.run();
  ASSERT_EQ(FR.Campaigns.size(), 2u);
  // Triage order: the 3-occurrence bucket first.
  EXPECT_EQ(FR.Campaigns[0].Occurrences, 3u);
  EXPECT_EQ(FR.Campaigns[1].Occurrences, 1u);
  EXPECT_EQ(FR.Campaigns[0].Sig, FailureSignature::of(Hot));
  // Unknown workloads fail the campaign without taking the service down.
  EXPECT_FALSE(FR.Campaigns[0].Report.Success);
  EXPECT_NE(FR.Campaigns[0].Report.FailureDetail.find("unknown workload"),
            std::string::npos);
}

TEST(FleetScheduler, DeterministicAcrossJobCounts) {
  FleetReport Reports[2];
  unsigned JobCounts[2] = {1, 4};
  for (int I = 0; I < 2; ++I) {
    FleetScheduler Sched(fastConfig(JobCounts[I]));
    harvestFastCorpus(Sched);
    Reports[I] = Sched.run();
  }
  const FleetReport &A = Reports[0], &B = Reports[1];
  ASSERT_GE(A.Campaigns.size(), 3u) << "corpus produced too few buckets";
  ASSERT_EQ(A.Campaigns.size(), B.Campaigns.size());
  unsigned Reproduced = 0;
  for (size_t I = 0; I < A.Campaigns.size(); ++I) {
    const Campaign &CA = A.Campaigns[I], &CB = B.Campaigns[I];
    EXPECT_EQ(CA.Sig, CB.Sig);
    EXPECT_EQ(CA.Occurrences, CB.Occurrences);
    EXPECT_EQ(CA.CampaignSeed, CB.CampaignSeed);
    EXPECT_EQ(CA.Report.Success, CB.Report.Success);
    EXPECT_EQ(CA.Report.Occurrences, CB.Report.Occurrences);
    // The acceptance bar: byte-identical test cases per bucket.
    EXPECT_EQ(CA.Report.TestCase.Args, CB.Report.TestCase.Args);
    EXPECT_EQ(CA.Report.TestCase.Bytes, CB.Report.TestCase.Bytes);
    EXPECT_EQ(CA.Report.ReplayScheduleSeed, CB.Report.ReplayScheduleSeed);
    EXPECT_EQ(CA.RecordingSet, CB.RecordingSet);
    Reproduced += CA.Report.Success;
  }
  EXPECT_GT(Reproduced, 0u);
}

TEST(FleetScheduler, SharedCacheGetsHits) {
  FleetScheduler Sched(fastConfig(2));
  harvestFastCorpus(Sched);
  FleetReport FR = Sched.run();
  EXPECT_GT(FR.Cache.Misses, 0u);
  EXPECT_GT(FR.Cache.Hits, 0u) << "no repeated query was memoized";
  EXPECT_GT(FR.Reproduced, 0u);
}

//===----------------------------------------------------------------------===//
// Solver cache
//===----------------------------------------------------------------------===//

/// Builds the same nontrivial query in any context: constraints over two
/// byte variables and a symbolic array forcing real solving.
static std::vector<ExprRef> buildQuery(ExprContext &Ctx) {
  ExprRef X = Ctx.makeVar("x", 32);
  ExprRef Y = Ctx.makeVar("y", 32);
  ExprRef A = Ctx.symArray("a", 8, 16);
  std::vector<ExprRef> Q;
  Q.push_back(Ctx.eq(Ctx.add(X, Y), Ctx.constant(77, 32)));
  Q.push_back(Ctx.ult(X, Ctx.constant(50, 32)));
  Q.push_back(Ctx.ult(Ctx.constant(20, 32), X));
  ExprRef Idx = Ctx.trunc(Y, 8);
  Q.push_back(Ctx.eq(Ctx.read(A, Ctx.bvand(Idx, Ctx.constant(15, 8))),
                     Ctx.constant(9, 8)));
  return Q;
}

TEST(SolverCache, CachedAnswerEqualsFreshSolve) {
  SolverResultCache Cache;

  ExprContext FreshCtx;
  ConstraintSolver Fresh(FreshCtx);
  QueryResult Want = Fresh.checkSat(buildQuery(FreshCtx));
  ASSERT_EQ(Want.Status, QueryStatus::Sat);

  ExprContext Ctx1;
  SolverConfig SC;
  SC.SharedCache = &Cache;
  ConstraintSolver S1(Ctx1, SC);
  auto Q1 = buildQuery(Ctx1);
  QueryResult Miss = S1.checkSat(Q1);
  EXPECT_EQ(Cache.getStats().Hits, 0u);
  EXPECT_EQ(Cache.getStats().Misses, 1u);

  QueryResult Hit = S1.checkSat(Q1);
  EXPECT_EQ(Cache.getStats().Hits, 1u);

  // A second, independently built context (another campaign) shares the
  // entry, and the model is valid there too.
  ExprContext Ctx2;
  ConstraintSolver S2(Ctx2, SC);
  auto Q2 = buildQuery(Ctx2);
  QueryResult CrossHit = S2.checkSat(Q2);
  EXPECT_EQ(Cache.getStats().Hits, 2u);

  for (const QueryResult *R : {&Miss, &Hit, &CrossHit}) {
    EXPECT_EQ(R->Status, Want.Status);
    EXPECT_EQ(R->WorkUsed, Want.WorkUsed);
    EXPECT_EQ(R->Model.VarValues, Want.Model.VarValues);
    EXPECT_EQ(R->Model.ArrayValues, Want.Model.ArrayValues);
  }
  for (ExprRef E : Q2)
    EXPECT_EQ(Ctx2.evaluate(E, CrossHit.Model), 1u);
}

TEST(SolverCache, EnumerationIsMemoized) {
  SolverResultCache Cache;
  ExprContext Ctx;
  SolverConfig SC;
  SC.SharedCache = &Cache;
  ConstraintSolver S(Ctx, SC);

  ExprRef X = Ctx.makeVar("x", 8);
  std::vector<ExprRef> Asserts = {Ctx.ult(X, Ctx.constant(3, 8))};

  std::vector<uint64_t> First, Second;
  bool CompleteA = false, CompleteB = false;
  ASSERT_EQ(S.enumerateValues(Asserts, X, 8, First, CompleteA),
            QueryStatus::Sat);
  EXPECT_EQ(Cache.getStats().Hits, 0u);
  ASSERT_EQ(S.enumerateValues(Asserts, X, 8, Second, CompleteB),
            QueryStatus::Sat);
  EXPECT_EQ(Cache.getStats().Hits, 1u);
  EXPECT_EQ(First, Second);
  EXPECT_EQ(CompleteA, CompleteB);
  EXPECT_TRUE(CompleteA);
  ASSERT_EQ(First.size(), 3u);
}

TEST(SolverCache, CostWeightedEvictionKeepsValuableEntries) {
  SolverCacheConfig CC;
  CC.NumShards = 1;
  CC.MaxEntriesPerShard = 2;
  CC.Eviction = CacheEvictionPolicy::CostWeighted;
  SolverResultCache Cache(CC);

  auto Digest = [](uint64_t K) { return QueryDigest{K, K * 31}; };
  auto Result = [](uint64_t Work) {
    CachedQueryResult R;
    R.Status = QueryStatus::Sat;
    R.WorkUsed = Work;
    return R;
  };

  // Expensive entry A gets reused; cheap entry B never does.
  Cache.insert(Digest(1), Result(100));
  Cache.insert(Digest(2), Result(10));
  CachedQueryResult Out;
  ASSERT_TRUE(Cache.lookup(Digest(1), Out));
  ASSERT_TRUE(Cache.lookup(Digest(1), Out));

  // Overflow: the victim must be B (score 10x1), not A (score 100x3).
  Cache.insert(Digest(3), Result(50));
  EXPECT_TRUE(Cache.lookup(Digest(1), Out));
  EXPECT_EQ(Out.WorkUsed, 100u);
  EXPECT_TRUE(Cache.lookup(Digest(3), Out));
  EXPECT_FALSE(Cache.lookup(Digest(2), Out)) << "evicted the wrong entry";

  SolverCacheStats Stats = Cache.getStats();
  EXPECT_EQ(Stats.Insertions, 3u);
  EXPECT_EQ(Stats.Evictions, 1u);
  EXPECT_EQ(Stats.Entries, 2u);

  // Cost-weighted overflow doubles as admission control: a new entry
  // cheaper than everything cached is the victim of its own insertion.
  Cache.insert(Digest(4), Result(1));
  EXPECT_FALSE(Cache.lookup(Digest(4), Out));
  EXPECT_EQ(Cache.getStats().Entries, 2u);
}

TEST(SolverCache, FifoPolicyEvictsOldest) {
  SolverCacheConfig CC;
  CC.NumShards = 1;
  CC.MaxEntriesPerShard = 2;
  CC.Eviction = CacheEvictionPolicy::FIFO;
  SolverResultCache Cache(CC);

  auto Digest = [](uint64_t K) { return QueryDigest{K, K * 31}; };
  CachedQueryResult R;
  R.Status = QueryStatus::Sat;
  R.WorkUsed = 1000; // High value must not save the oldest entry.
  Cache.insert(Digest(1), R);
  R.WorkUsed = 1;
  Cache.insert(Digest(2), R);
  Cache.insert(Digest(3), R);

  CachedQueryResult Out;
  EXPECT_FALSE(Cache.lookup(Digest(1), Out));
  EXPECT_TRUE(Cache.lookup(Digest(2), Out));
  EXPECT_TRUE(Cache.lookup(Digest(3), Out));
}

TEST(SolverCache, EvictionKeepsCorrectness) {
  SolverCacheConfig CC;
  CC.NumShards = 1;
  CC.MaxEntriesPerShard = 2;
  SolverResultCache Cache(CC);

  ExprContext Ctx;
  SolverConfig SC;
  SC.SharedCache = &Cache;
  ConstraintSolver S(Ctx, SC);

  ExprRef X = Ctx.makeVar("x", 16);
  for (uint64_t K = 1; K <= 5; ++K) {
    QueryResult R =
        S.checkSat({Ctx.eq(X, Ctx.constant(K * 1000, 16))});
    ASSERT_EQ(R.Status, QueryStatus::Sat);
    EXPECT_EQ(R.Model.getVar(X->getVarId()), K * 1000);
  }
  SolverCacheStats Stats = Cache.getStats();
  EXPECT_EQ(Stats.Insertions, 5u);
  EXPECT_EQ(Stats.Evictions, 3u);
  EXPECT_EQ(Stats.Entries, 2u);

  // An evicted query re-solves to the same answer.
  QueryResult R = S.checkSat({Ctx.eq(X, Ctx.constant(1000, 16))});
  EXPECT_EQ(R.Status, QueryStatus::Sat);
  EXPECT_EQ(R.Model.getVar(X->getVarId()), 1000u);
}

//===----------------------------------------------------------------------===//
// Persistence
//===----------------------------------------------------------------------===//

TEST(FleetPersist, RoundTripAndResume) {
  std::string Path = tempPath("er_fleet_state.txt");

  FleetReport Original;
  {
    FleetScheduler Sched(fastConfig(2));
    harvestFastCorpus(Sched);
    Original = Sched.run();
    ASSERT_GT(Original.Reproduced, 0u);
    std::string Err;
    ASSERT_TRUE(Sched.saveState(Path, &Err)) << Err;
  }

  FleetScheduler Resumed(fastConfig(2));
  std::string Err;
  ASSERT_TRUE(Resumed.loadState(Path, &Err)) << Err;
  ASSERT_EQ(Resumed.numCampaigns(), Original.Campaigns.size());

  // Submitting more occurrences of a known bucket must not reopen it.
  harvestFastCorpus(Resumed);
  FleetReport FR = Resumed.run();
  EXPECT_EQ(FR.CampaignsRun, 0u) << "resume re-ran completed campaigns";
  EXPECT_EQ(FR.CampaignsResumed, Original.Campaigns.size());

  for (size_t I = 0; I < FR.Campaigns.size(); ++I) {
    const Campaign &Want = Original.Campaigns[I], &Got = FR.Campaigns[I];
    EXPECT_EQ(Got.Sig, Want.Sig);
    EXPECT_EQ(Got.BugId, Want.BugId);
    EXPECT_EQ(Got.CampaignSeed, Want.CampaignSeed);
    EXPECT_TRUE(Got.Resumed);
    EXPECT_EQ(Got.Report.Success, Want.Report.Success);
    EXPECT_EQ(Got.Report.Occurrences, Want.Report.Occurrences);
    EXPECT_EQ(Got.Report.TestCase.Args, Want.Report.TestCase.Args);
    EXPECT_EQ(Got.Report.TestCase.Bytes, Want.Report.TestCase.Bytes);
    EXPECT_EQ(Got.Report.ReplayScheduleSeed, Want.Report.ReplayScheduleSeed);
    EXPECT_EQ(Got.Report.Failure.Kind, Want.Report.Failure.Kind);
    EXPECT_EQ(Got.Report.Failure.Message, Want.Report.Failure.Message);
    EXPECT_EQ(Got.RecordingSet, Want.RecordingSet);
  }
  std::remove(Path.c_str());
}

TEST(FleetPersist, RejectsMalformedFiles) {
  std::string Path = tempPath("er_fleet_bad.txt");
  {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    ASSERT_NE(F, nullptr);
    std::fputs("not a fleet state file\n", F);
    std::fclose(F);
  }
  uint64_t RootSeed = 0;
  std::vector<Campaign> Campaigns;
  std::string Err;
  EXPECT_FALSE(loadFleetState(Path, RootSeed, Campaigns, &Err));
  EXPECT_NE(Err.find("magic"), std::string::npos);

  EXPECT_FALSE(loadFleetState(tempPath("er_fleet_missing.txt"), RootSeed,
                              Campaigns, &Err));
  std::remove(Path.c_str());
}

/// Writes \p Contents to a temp file and returns whether loadFleetState
/// survives it (crash/UB = test failure; accept or reject are both fine).
static bool loadFromString(const std::string &Contents, std::string *Err,
                           std::vector<Campaign> *Out = nullptr) {
  // Per-process name: ctest runs each fuzz test as its own process, and a
  // shared scratch file would let them tear each other's contents mid-read.
  std::string Path =
      tempPath("er_fleet_fuzz." + std::to_string(::getpid()) + ".txt");
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  EXPECT_NE(F, nullptr);
  std::fwrite(Contents.data(), 1, Contents.size(), F);
  std::fclose(F);
  uint64_t RootSeed = 0;
  std::vector<Campaign> Campaigns;
  bool Ok = loadFleetState(Path, RootSeed, Campaigns, Err);
  if (Out)
    *Out = std::move(Campaigns);
  std::remove(Path.c_str());
  return Ok;
}

/// Produces one real, completed fleet state to mutate.
static std::string validStateText() {
  static const std::string Text = [] {
    FleetScheduler Sched(fastConfig(1));
    Sched.harvest(*findBug("Bash-108885"), 80, 1);
    Sched.harvest(*findBug("SQLite-4e8e485"), 80, 1);
    Sched.run();
    std::string Path =
        tempPath("er_fleet_fuzz_seed." + std::to_string(::getpid()) + ".txt");
    std::string Err;
    EXPECT_TRUE(Sched.saveState(Path, &Err)) << Err;
    std::ifstream IS(Path);
    std::string S((std::istreambuf_iterator<char>(IS)),
                  std::istreambuf_iterator<char>());
    std::remove(Path.c_str());
    EXPECT_FALSE(S.empty());
    return S;
  }();
  return Text;
}

TEST(FleetPersistFuzz, TruncationAtEveryOffsetNeverCrashes) {
  std::string Valid = validStateText();
  for (size_t Cut = 0; Cut < Valid.size(); ++Cut) {
    std::string Err;
    loadFromString(Valid.substr(0, Cut), &Err);
    // Either verdict is acceptable; surviving the parse is the assertion.
  }
}

TEST(FleetPersistFuzz, RandomByteFlipsNeverCrash) {
  std::string Valid = validStateText();
  ASSERT_FALSE(Valid.empty());
  Rng R(20260807);
  for (int Trial = 0; Trial < 400; ++Trial) {
    std::string Mutated = Valid;
    unsigned Flips = 1 + static_cast<unsigned>(R.nextBounded(4));
    for (unsigned F = 0; F < Flips; ++F) {
      size_t Pos = static_cast<size_t>(R.nextBounded(Mutated.size()));
      Mutated[Pos] = static_cast<char>(R.nextBounded(256));
    }
    std::string Err;
    loadFromString(Mutated, &Err);
  }
}

TEST(FleetPersistFuzz, DuplicatedLinesNeverCrashOrOverMerge) {
  std::string Valid = validStateText();
  // Duplicate every line in place; the loader may reject the file, but it
  // must neither crash nor invent campaigns beyond the duplicated count.
  std::string Doubled;
  size_t Start = 0, Lines = 0, CampaignLines = 0;
  while (Start < Valid.size()) {
    size_t End = Valid.find('\n', Start);
    if (End == std::string::npos)
      End = Valid.size() - 1;
    std::string Line = Valid.substr(Start, End - Start + 1);
    Doubled += Line;
    Doubled += Line;
    CampaignLines += Line.rfind("campaign ", 0) == 0;
    ++Lines;
    Start = End + 1;
  }
  ASSERT_GT(Lines, 4u);
  std::string Err;
  std::vector<Campaign> Out;
  if (loadFromString(Doubled, &Err, &Out)) {
    EXPECT_LE(Out.size(), 2 * CampaignLines);
  }
}

TEST(FleetPersistFuzz, HostileCountsRejectedNotAllocated) {
  // Each of these used to reach an unchecked `reserve(N)` / `N * 2`
  // overflow; they must now fail cleanly (and quickly).
  const char *Hostile[] = {
      // readIdList OOM: id-list length far beyond the line.
      "er-fleet-state v1\nrootseed 1\ncampaign 00\nbug b\n"
      "sig 1 1 18446744073709551615 1\nend\n",
      "er-fleet-state v1\nrootseed 1\ncampaign 00\nbug b\n"
      "sig 1 1 1 7\noccurrences 1\nseed 1\ncompleted 1\n"
      "recordingset 99999999999999 1 2\nend\n",
      // testbytes length check wrapped at N = 2^63: Hex.size() == 0
      // passed `N * 2 == 0` and the decode loop ran off the string.
      "er-fleet-state v1\nrootseed 1\ncampaign 00\nbug b\n"
      "sig 1 1 1 7\ncompleted 1\ntestbytes 9223372036854775808 \nend\n",
      // Out-of-range failure kinds must not reach digesting/naming.
      "er-fleet-state v1\nrootseed 1\ncampaign 00\nbug b\n"
      "sig 250 1 1 7\nend\n",
      "er-fleet-state v1\nrootseed 1\ncampaign 00\nbug b\n"
      "sig 1 1 1 7\ncompleted 1\nfailure 99 1 0 0\nend\n",
      // A campaign with no identity must not merge as the zero signature.
      "er-fleet-state v1\nrootseed 1\ncampaign 00\nbug b\n"
      "occurrences 3\nend\n",
  };
  for (const char *Text : Hostile) {
    std::string Err;
    EXPECT_FALSE(loadFromString(Text, &Err)) << Text;
    EXPECT_FALSE(Err.empty());
  }
}

//===----------------------------------------------------------------------===//
// Rng::split
//===----------------------------------------------------------------------===//

TEST(RngSplit, DeterministicAndParentPreserving) {
  Rng Root(123);
  Rng A1 = Root.split(7);
  Rng A2 = Root.split(7);
  Rng B = Root.split(8);
  // Same stream id: identical sequence. Different id: different sequence.
  bool Differs = false;
  for (int I = 0; I < 64; ++I) {
    uint64_t V = A1.next();
    EXPECT_EQ(V, A2.next());
    Differs |= V != B.next();
  }
  EXPECT_TRUE(Differs);

  // split() is const: the parent's sequence is unaffected by splitting.
  Rng P1(42), P2(42);
  (void)P1.split(999);
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(P1.next(), P2.next());

  // Splitting depends on parent state, not just the seed.
  Rng Root2(123);
  (void)Root2.next();
  Rng C = Root2.split(7);
  Rng A3 = Rng(123).split(7);
  bool StateMatters = false;
  for (int I = 0; I < 16; ++I)
    StateMatters |= C.next() != A3.next();
  EXPECT_TRUE(StateMatters);
}

TEST(RngSplit, StatisticalSmoke) {
  // Each split stream should look uniform, and streams should not be
  // correlated with each other.
  Rng Root(20260807);
  const int Streams = 8, Draws = 4096;
  for (int S = 0; S < Streams; ++S) {
    Rng Child = Root.split(S);
    double Sum = 0;
    int Buckets[8] = {0};
    for (int I = 0; I < Draws; ++I) {
      double D = Child.nextDouble();
      Sum += D;
      ++Buckets[static_cast<int>(D * 8)];
    }
    double Mean = Sum / Draws;
    EXPECT_NEAR(Mean, 0.5, 0.03) << "stream " << S;
    for (int B = 0; B < 8; ++B)
      EXPECT_NEAR(Buckets[B], Draws / 8, Draws / 8 * 0.25)
          << "stream " << S << " bucket " << B;
  }

  // Cross-stream correlation: matching draws from adjacent streams agree
  // only at chance level.
  Rng X = Root.split(1), Y = Root.split(2);
  int TopBitAgree = 0;
  for (int I = 0; I < Draws; ++I)
    TopBitAgree += (X.next() >> 63) == (Y.next() >> 63);
  EXPECT_NEAR(TopBitAgree, Draws / 2, Draws / 8);
}

} // namespace
