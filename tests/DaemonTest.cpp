//===- DaemonTest.cpp - Collector daemon, preemption, fault injection ------===//
//
// Deterministic coverage of the long-running ingestion shape
// (docs/INGEST.md, docs/FLEET.md) — no sleeps, no wall clock:
//  - The src/support/ seams themselves: FaultFs failpoint semantics
//    (skip/fire/path, torn writes, NotFound), the ER_FAULT_SPEC grammar,
//    VirtualClock jumps.
//  - ReportSpool claim-by-rename retries: a transient rename failure is
//    retried, an exhausted retry budget leaves the file for the next
//    drain — records are never silently dropped.
//  - CollectorDaemon: incremental drains feed running campaigns without
//    restarting them; drain retries back off deterministically (50, 100,
//    200... capped); a crash in either half of the checkpoint/ack window
//    re-delivers records exactly once; clean shutdown persists state.
//  - FleetScheduler preemption: a hot bucket suspends the weakest active
//    campaign, which resumes (same process or from a state file) to final
//    state files and test cases byte-identical to an uninterrupted run.
//  - Live telemetry (docs/OBSERVABILITY.md): /healthz flips unhealthy the
//    moment a cycle overruns its deadline (VirtualClock, probed from the
//    backoff sleep hook — exactly when a wedged daemon would be probed),
//    /status carries the campaign table, periodic metrics.json snapshots
//    land atomically, and a real listener survives concurrent scrapes
//    while cycles run (the TSan CI job races them).
//
//===----------------------------------------------------------------------===//

#include "ingest/CollectorDaemon.h"
#include "ingest/ReportCollector.h"
#include "ingest/ReportSpool.h"
#include "support/FaultFs.h"
#include "support/Fs.h"

#include "fleet/FailureSignature.h"
#include "fleet/FleetScheduler.h"
#include "net/HttpServer.h"
#include "obs/Json.h"
#include "obs/PromExport.h"
#include "vm/Interpreter.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace er;
namespace fs = std::filesystem;

namespace {

constexpr uint64_t RootSeed = 20260807;

/// Fresh, empty directory unique to the calling test.
std::string freshDir(const std::string &Name) {
  fs::path Dir = fs::path(testing::TempDir()) / ("er_daemon_" + Name);
  fs::remove_all(Dir);
  fs::create_directories(Dir);
  return Dir.string();
}

FleetFailureReport makeReport(const std::string &BugId, FailureKind Kind,
                              unsigned Instr, std::vector<unsigned> Stack) {
  FleetFailureReport R;
  R.BugId = BugId;
  R.Failure.Kind = Kind;
  R.Failure.InstrGlobalId = Instr;
  R.Failure.CallStack = std::move(Stack);
  return R;
}

/// Publishes one spool file with three reports (two of one signature, one
/// of another) from machine 5, sequences 1..3. BugIds are not in the
/// workload registry, so campaigns complete inline — these tests exercise
/// the delivery protocol, not reconstruction.
void publishCraftedFile(const std::string &Spool) {
  SpoolWriter Writer(Spool, /*MachineId=*/5);
  Writer.append(makeReport("bug-a", FailureKind::NullDeref, 10, {1}));
  Writer.append(makeReport("bug-a", FailureKind::NullDeref, 10, {1}));
  Writer.append(makeReport("bug-b", FailureKind::OutOfBounds, 20, {2, 3}));
  std::string Err;
  ASSERT_TRUE(Writer.flush(&Err)) << Err;
}

uint64_t totalOccurrences(const FleetScheduler &Sched) {
  uint64_t Total = 0;
  for (const Campaign &C : Sched.getCampaigns())
    Total += C.Occurrences;
  return Total;
}

/// Serialized scheduler state with the one wall-clock field scrubbed —
/// the byte-comparison proxy for "the same result" (campaigns land in
/// triage order, so this is submission-order-independent).
std::string stateBytes(FleetScheduler &Sched) {
  std::string Path = (fs::path(testing::TempDir()) /
                      ("er_daemon_state_cmp." + std::to_string(::getpid()) +
                       ".txt"))
                         .string();
  std::string Err;
  EXPECT_TRUE(Sched.saveState(Path, &Err)) << Err;
  std::ifstream IS(Path, std::ios::binary);
  std::string S, Line;
  while (std::getline(IS, Line)) {
    if (Line.rfind("symexseconds ", 0) == 0)
      Line = "symexseconds <scrubbed>";
    S += Line;
    S += '\n';
  }
  std::remove(Path.c_str());
  return S;
}

/// Daemon config wired to a VirtualClock and a sleep hook that records
/// requested durations and advances the clock — the whole retry/backoff
/// timeline runs without a single real sleep.
struct TestDaemonRig {
  VirtualClock Clock{1'000'000'000};
  std::vector<uint64_t> Sleeps;
  DaemonConfig Config;

  explicit TestDaemonRig(std::string Spool, std::string StateFile = "",
                         FsOps *Fs = nullptr) {
    Config.Collector.SpoolDir = std::move(Spool);
    Config.Collector.Fs = Fs;
    Config.StateFile = std::move(StateFile);
    Config.Clock = &Clock;
    Config.Sleep = [this](uint64_t Ms) {
      Sleeps.push_back(Ms);
      Clock.advanceNs(Ms * 1'000'000);
    };
  }
};

//===----------------------------------------------------------------------===//
// The seams: FaultFs, fault-spec grammar, VirtualClock
//===----------------------------------------------------------------------===//

TEST(FaultFs, SkipAndFireGateInjection) {
  std::string Dir = freshDir("faultfs_gate");
  FaultFs FF;
  Failpoint P;
  P.Operation = Failpoint::Op::Write;
  P.Skip = 1; // Let the first write through.
  P.Fire = 1; // Fail exactly one.
  FF.addFailpoint(P);

  std::string Path = Dir + "/f.txt";
  EXPECT_EQ(FF.writeFile(Path, "one"), FsStatus::Ok);
  std::string Err;
  EXPECT_EQ(FF.writeFile(Path, "two", &Err), FsStatus::IoError);
  EXPECT_NE(Err.find("injected fault"), std::string::npos);
  EXPECT_EQ(FF.writeFile(Path, "three"), FsStatus::Ok);

  EXPECT_EQ(FF.faultsInjected(), 1u);
  std::vector<std::string> Log = FF.takeLog();
  ASSERT_EQ(Log.size(), 1u);
  EXPECT_EQ(Log[0], "write fail " + Path);
  EXPECT_TRUE(FF.takeLog().empty()) << "takeLog must drain the log";
}

TEST(FaultFs, TornWritePersistsPrefixThenFails) {
  std::string Dir = freshDir("faultfs_torn");
  FaultFs FF;
  Failpoint P;
  P.Operation = Failpoint::Op::Write;
  P.Act = Failpoint::Action::TornWrite;
  P.TornBytes = 3;
  FF.addFailpoint(P);

  std::string Path = Dir + "/torn.txt";
  EXPECT_EQ(FF.writeFile(Path, "hello!"), FsStatus::IoError);
  std::vector<uint8_t> Bytes;
  ASSERT_EQ(FsOps::real().readFile(Path, Bytes), FsStatus::Ok);
  EXPECT_EQ(std::string(Bytes.begin(), Bytes.end()), "hel")
      << "a torn write must persist exactly the scripted prefix";
}

TEST(FaultFs, NotFoundActionAndPathFilter) {
  std::string Dir = freshDir("faultfs_nf");
  FaultFs FF;
  Failpoint P;
  P.Operation = Failpoint::Op::Rename;
  P.Act = Failpoint::Action::NotFound;
  P.PathSubstr = "victim";
  FF.addFailpoint(P);

  ASSERT_EQ(FF.writeFile(Dir + "/victim.txt", "x"), FsStatus::Ok);
  ASSERT_EQ(FF.writeFile(Dir + "/other.txt", "y"), FsStatus::Ok);
  // Matching source path: the scripted lost-race answer, no effect.
  EXPECT_EQ(FF.rename(Dir + "/victim.txt", Dir + "/v2.txt"),
            FsStatus::NotFound);
  EXPECT_TRUE(FF.exists(Dir + "/victim.txt"));
  // Non-matching path passes through untouched.
  EXPECT_EQ(FF.rename(Dir + "/other.txt", Dir + "/o2.txt"), FsStatus::Ok);
  EXPECT_TRUE(FF.exists(Dir + "/o2.txt"));
}

TEST(FaultFs, ParseFaultSpecRoundTripsTheCatalog) {
  std::vector<Failpoint> Points;
  std::string Err;
  ASSERT_TRUE(parseFaultSpec(
      "rename:fail:path=.claimed:skip=2:fire=1;write:torn:torn=7;"
      "any:notfound:fire=0",
      Points, &Err))
      << Err;
  ASSERT_EQ(Points.size(), 3u);
  EXPECT_EQ(Points[0].Operation, Failpoint::Op::Rename);
  EXPECT_EQ(Points[0].Act, Failpoint::Action::Fail);
  EXPECT_EQ(Points[0].PathSubstr, ".claimed");
  EXPECT_EQ(Points[0].Skip, 2u);
  EXPECT_EQ(Points[0].Fire, 1u);
  EXPECT_EQ(Points[1].Operation, Failpoint::Op::Write);
  EXPECT_EQ(Points[1].Act, Failpoint::Action::TornWrite);
  EXPECT_EQ(Points[1].TornBytes, 7u);
  EXPECT_EQ(Points[2].Operation, Failpoint::Op::Any);
  EXPECT_EQ(Points[2].Fire, 0u);
}

TEST(FaultFs, ParseFaultSpecRejectsMalformedSpecs) {
  for (const char *Bad : {"bogus", "write", "write:frobnicate",
                          "write:fail:zork=1", "write:fail:skip",
                          "write:fail:skip=abc", "chmod:fail"}) {
    std::vector<Failpoint> Points;
    std::string Err;
    EXPECT_FALSE(parseFaultSpec(Bad, Points, &Err)) << Bad;
    EXPECT_FALSE(Err.empty()) << Bad;
    EXPECT_TRUE(Points.empty()) << "output must be untouched on failure";
  }
}

TEST(Daemon, UptimeFollowsVirtualClockAndClampsBackwardJumps) {
  TestDaemonRig Rig(freshDir("uptime"));
  FleetScheduler Sched((FleetConfig()));
  CollectorDaemon Daemon(Rig.Config, Sched);
  ASSERT_TRUE(Daemon.start());
  EXPECT_EQ(Daemon.uptimeNs(), 0u);
  Rig.Clock.advanceNs(500);
  EXPECT_EQ(Daemon.uptimeNs(), 500u);
  // A host clock stepping backwards must clamp, not wrap to ~2^64.
  Rig.Clock.set(10);
  EXPECT_EQ(Daemon.uptimeNs(), 0u);
  Rig.Clock.set(2'000'000'000);
  EXPECT_EQ(Daemon.uptimeNs(), 1'000'000'000u);
}

//===----------------------------------------------------------------------===//
// Spool claim retries (the silent-drop fix)
//===----------------------------------------------------------------------===//

TEST(SpoolClaim, TransientRenameFailureIsRetriedWithinTheDrain) {
  std::string Spool = freshDir("claim_retry");
  publishCraftedFile(Spool);

  FaultFs FF;
  std::vector<Failpoint> Points;
  ASSERT_TRUE(parseFaultSpec("rename:fail:path=.ers:fire=1", Points));
  for (const Failpoint &P : Points)
    FF.addFailpoint(P);

  FleetScheduler Sched((FleetConfig()));
  ReportCollector Collector({.SpoolDir = Spool, .Fs = &FF});
  std::string Err;
  ASSERT_TRUE(Collector.drainInto(Sched, &Err)) << Err;
  const CollectorStats &S = Collector.getStats();
  EXPECT_EQ(S.ClaimRetries, 1u);
  EXPECT_EQ(S.ClaimFailures, 0u);
  EXPECT_EQ(S.FilesClaimed, 1u);
  EXPECT_EQ(S.Submitted, 3u) << "the retried claim must deliver its records";
  EXPECT_EQ(totalOccurrences(Sched), 3u);
}

TEST(SpoolClaim, ExhaustedRetryBudgetLeavesFileForTheNextDrain) {
  std::string Spool = freshDir("claim_exhaust");
  publishCraftedFile(Spool);

  FaultFs FF;
  std::vector<Failpoint> Points;
  ASSERT_TRUE(parseFaultSpec("rename:fail:path=.ers:fire=0", Points));
  for (const Failpoint &P : Points)
    FF.addFailpoint(P);

  FleetScheduler Sched((FleetConfig()));
  ReportCollector Collector({.SpoolDir = Spool, .Fs = &FF});
  std::string Err;
  ASSERT_TRUE(Collector.drainInto(Sched, &Err)) << Err;
  EXPECT_EQ(Collector.getStats().ClaimRetries, 3u); // Default budget.
  EXPECT_EQ(Collector.getStats().ClaimFailures, 1u);
  EXPECT_EQ(Collector.getStats().Submitted, 0u);
  EXPECT_EQ(listSpoolFiles(Spool).size(), 1u)
      << "an unclaimable file must stay published, not vanish";

  // The disk heals; the same collector's next drain delivers exactly once.
  FF.clearFailpoints();
  ASSERT_TRUE(Collector.drainInto(Sched, &Err)) << Err;
  EXPECT_EQ(Collector.getStats().Submitted, 3u);
  EXPECT_EQ(totalOccurrences(Sched), 3u);
  EXPECT_TRUE(listSpoolFiles(Spool).empty());
}

//===----------------------------------------------------------------------===//
// Daemon drain retry/backoff
//===----------------------------------------------------------------------===//

TEST(Daemon, DrainRetriesWithDoublingBackoffThenSucceeds) {
  std::string Spool = freshDir("drain_retry");
  publishCraftedFile(Spool);

  FaultFs FF;
  std::vector<Failpoint> Points;
  // The quarantine mkdir is the first I/O of every drain attempt: failing
  // it twice makes attempts 1 and 2 fail and attempt 3 succeed.
  ASSERT_TRUE(parseFaultSpec("createdir:fail:path=quarantine:fire=2", Points));
  for (const Failpoint &P : Points)
    FF.addFailpoint(P);

  FleetScheduler Sched((FleetConfig()));
  TestDaemonRig Rig(Spool, freshDir("drain_retry_state") + "/daemon.state",
                    &FF);
  CollectorDaemon Daemon(Rig.Config, Sched);
  ASSERT_TRUE(Daemon.runCycle());

  EXPECT_EQ(Rig.Sleeps, (std::vector<uint64_t>{50, 100}))
      << "backoff must double from the base, one sleep per failed attempt";
  const DaemonStats &DS = Daemon.getStats();
  EXPECT_EQ(DS.DrainRetries, 2u);
  EXPECT_EQ(DS.Drains, 1u);
  EXPECT_EQ(DS.DrainFailures, 0u);
  EXPECT_EQ(Daemon.collectorStats().Submitted, 3u);
}

TEST(Daemon, DrainBackoffIsCappedAndFailureIsSurvived) {
  std::string Spool = freshDir("drain_cap");
  FaultFs FF;
  std::vector<Failpoint> Points;
  ASSERT_TRUE(parseFaultSpec("createdir:fail:path=quarantine:fire=0", Points));
  for (const Failpoint &P : Points)
    FF.addFailpoint(P);

  FleetScheduler Sched((FleetConfig()));
  TestDaemonRig Rig(Spool, freshDir("drain_cap_state") + "/daemon.state", &FF);
  Rig.Config.MaxDrainRetries = 3;
  Rig.Config.RetryBackoffBaseMs = 800;
  Rig.Config.RetryBackoffCapMs = 2000;
  CollectorDaemon Daemon(Rig.Config, Sched);

  // A cycle whose drain fails after every retry is not fatal: campaigns
  // still step, the failure is counted, the next cycle tries again.
  ASSERT_TRUE(Daemon.runCycle());
  EXPECT_EQ(Rig.Sleeps, (std::vector<uint64_t>{800, 1600, 2000}));
  EXPECT_EQ(Daemon.getStats().DrainFailures, 1u);
  EXPECT_EQ(Daemon.getStats().Drains, 0u);

  FF.clearFailpoints();
  ASSERT_TRUE(Daemon.runCycle());
  EXPECT_EQ(Daemon.getStats().Drains, 1u);
}

//===----------------------------------------------------------------------===//
// Crash windows: exactly-once through checkpoint + ack
//===----------------------------------------------------------------------===//

TEST(Daemon, CrashBeforeCheckpointRedeliversExactlyOnce) {
  std::string Spool = freshDir("crash_preckpt");
  std::string StateFile = freshDir("crash_preckpt_state") + "/daemon.state";
  publishCraftedFile(Spool);

  // Life 1: the drain lands but every checkpoint publish fails, and the
  // process dies before a checkpoint ever owns the drained records.
  {
    FaultFs FF;
    std::vector<Failpoint> Points;
    ASSERT_TRUE(parseFaultSpec("rename:fail:path=daemon.state:fire=0",
                               Points));
    for (const Failpoint &P : Points)
      FF.addFailpoint(P);
    FleetScheduler Doomed((FleetConfig()));
    TestDaemonRig Rig(Spool, StateFile, &FF);
    CollectorDaemon Daemon(Rig.Config, Doomed);
    ASSERT_TRUE(Daemon.runCycle());
    EXPECT_EQ(Daemon.collectorStats().Submitted, 3u);
    EXPECT_EQ(Daemon.getStats().CheckpointFailures, 1u);
    EXPECT_EQ(Daemon.getStats().FilesAcked, 0u)
        << "records must never be acked before a checkpoint owns them";
    EXPECT_EQ(Daemon.collector().pendingAckCount(), 1u);
    // Everything this life learned dies with it; the records survive on
    // disk as a claimed spool file.
    EXPECT_FALSE(FsOps::real().exists(StateFile));
    EXPECT_TRUE(listSpoolFiles(Spool).empty());
  }

  // Life 2: startup recovery un-claims the orphaned file and the first
  // drain delivers its records — once.
  FleetScheduler Sched((FleetConfig()));
  TestDaemonRig Rig(Spool, StateFile);
  CollectorDaemon Daemon(Rig.Config, Sched);
  std::string Err;
  ASSERT_TRUE(Daemon.start(&Err)) << Err;
  EXPECT_EQ(Daemon.getStats().FilesRecovered, 1u);
  ASSERT_TRUE(Daemon.runCycle());
  EXPECT_EQ(Daemon.collectorStats().Submitted, 3u);
  EXPECT_EQ(Daemon.collectorStats().DuplicatesDropped, 0u);
  EXPECT_EQ(totalOccurrences(Sched), 3u) << "each record counted exactly once";
  EXPECT_EQ(Daemon.getStats().FilesAcked, 1u);
  EXPECT_TRUE(listSpoolFiles(Spool).empty());
  EXPECT_TRUE(FsOps::real().exists(StateFile));
}

TEST(Daemon, CrashAfterCheckpointBeforeAckDeduplicates) {
  std::string Spool = freshDir("crash_preack");
  std::string StateFile = freshDir("crash_preack_state") + "/daemon.state";
  publishCraftedFile(Spool);

  // Life 1: checkpoint lands, but the ack's removes never reach the disk
  // — the crash window between steps 3 and 4 of the cycle.
  {
    FaultFs FF;
    std::vector<Failpoint> Points;
    ASSERT_TRUE(parseFaultSpec("remove:fail:path=.claimed:fire=0", Points));
    for (const Failpoint &P : Points)
      FF.addFailpoint(P);
    FleetScheduler Doomed((FleetConfig()));
    TestDaemonRig Rig(Spool, StateFile, &FF);
    CollectorDaemon Daemon(Rig.Config, Doomed);
    ASSERT_TRUE(Daemon.runCycle());
    EXPECT_EQ(Daemon.collectorStats().Submitted, 3u);
    EXPECT_EQ(Daemon.getStats().Checkpoints, 1u);
    EXPECT_TRUE(FsOps::real().exists(StateFile));
  }

  // Life 2: the checkpoint's high-water marks drop every redelivered
  // record as a duplicate; occurrence counts do not double.
  FleetScheduler Sched((FleetConfig()));
  TestDaemonRig Rig(Spool, StateFile);
  CollectorDaemon Daemon(Rig.Config, Sched);
  std::string Err;
  ASSERT_TRUE(Daemon.start(&Err)) << Err;
  EXPECT_EQ(Daemon.getStats().FilesRecovered, 1u);
  EXPECT_EQ(totalOccurrences(Sched), 3u) << "checkpointed campaigns restored";
  ASSERT_TRUE(Daemon.runCycle());
  EXPECT_EQ(Daemon.collectorStats().RecordsDecoded, 3u);
  EXPECT_EQ(Daemon.collectorStats().DuplicatesDropped, 3u);
  EXPECT_EQ(Daemon.collectorStats().Submitted, 0u);
  EXPECT_EQ(totalOccurrences(Sched), 3u) << "redelivery must not double-count";
  EXPECT_TRUE(listSpoolFiles(Spool).empty());
  EXPECT_EQ(Sched.snapshotReport().CampaignsResumed, 2u);
}

TEST(Daemon, CleanShutdownCheckpointsFinalState) {
  std::string Spool = freshDir("shutdown");
  std::string StateFile = freshDir("shutdown_state") + "/daemon.state";
  publishCraftedFile(Spool);

  FleetScheduler Sched((FleetConfig()));
  TestDaemonRig Rig(Spool, StateFile);
  CollectorDaemon *Running = nullptr;
  // The stop signal arrives during the inter-cycle sleep — the loop must
  // notice it without starting another cycle.
  Rig.Config.Sleep = [&](uint64_t) {
    if (Running)
      Running->requestStop();
  };
  CollectorDaemon Daemon(Rig.Config, Sched);
  Running = &Daemon;
  std::string Err;
  ASSERT_TRUE(Daemon.runLoop(&Err)) << Err;

  EXPECT_EQ(Daemon.getStats().Cycles, 1u);
  EXPECT_TRUE(Daemon.stopRequested());
  EXPECT_GE(Daemon.getStats().Checkpoints, 2u) << "cycle + final checkpoint";
  EXPECT_EQ(Daemon.getStats().FilesAcked, 1u);

  // The persisted state is a complete, loadable record of the session.
  FleetScheduler Reloaded((FleetConfig()));
  std::map<uint64_t, uint64_t> HighWater;
  ASSERT_TRUE(Reloaded.loadState(StateFile, &Err, &HighWater)) << Err;
  EXPECT_EQ(totalOccurrences(Reloaded), 3u);
  EXPECT_EQ(HighWater[5], 3u);
}

//===----------------------------------------------------------------------===//
// Incremental drains == one-shot run, byte for byte
//===----------------------------------------------------------------------===//

/// Fast-reconstructing workloads (same set IngestTest/FleetTest use).
const char *FastCorpus[] = {"Bash-108885", "SQLite-4e8e485",
                            "Matrixssl-2014-1569", "Memcached-2019-11596",
                            "PHP-2012-2386"};

void spoolMachine(const std::string &SpoolDir, uint64_t MachineId,
                  unsigned Runs = 80) {
  SpoolWriter Writer(SpoolDir, MachineId);
  for (const char *Id : FastCorpus) {
    simulateMachine(*findBug(Id), Runs, MachineId, RootSeed, VmConfig(),
                    [&](const FleetFailureReport &R) { Writer.append(R); });
    std::string Err;
    ASSERT_TRUE(Writer.flush(&Err)) << Err;
  }
}

TEST(Daemon, IncrementalDrainsFeedCampaignsWithoutRestarting) {
  std::string Spool = freshDir("incremental");
  std::string StateFile = freshDir("incremental_state") + "/daemon.state";
  spoolMachine(Spool, /*MachineId=*/0);

  FleetConfig FC;
  FC.RootSeed = RootSeed;
  FleetScheduler Sched(FC);
  TestDaemonRig Rig(Spool, StateFile);
  Rig.Config.MaxStepsPerCycle = 3; // Keep cycles short: many drains.
  CollectorDaemon Daemon(Rig.Config, Sched);

  ASSERT_TRUE(Daemon.runCycle());
  uint64_t AfterFirst = Daemon.collectorStats().Submitted;
  EXPECT_GT(AfterFirst, 0u);

  // Machine 1 reports mid-session; its records must merge into the live
  // triage state — existing campaigns keep their progress.
  spoolMachine(Spool, /*MachineId=*/1);
  for (unsigned Guard = 0;
       (Sched.hasPendingWork() || !listSpoolFiles(Spool).empty()) &&
       Guard < 500;
       ++Guard)
    ASSERT_TRUE(Daemon.runCycle());
  EXPECT_FALSE(Sched.hasPendingWork());
  EXPECT_GT(Daemon.collectorStats().Submitted, AfterFirst);
  EXPECT_EQ(Daemon.collectorStats().DuplicatesDropped, 0u);
  EXPECT_EQ(Daemon.getStats().FilesAcked, 2u * 5u)
      << "every spool file acked exactly once";

  // Byte-identity: the interleaved drain/step timeline must land exactly
  // where a one-shot in-process harvest + run() lands.
  FleetScheduler Reference(FC);
  for (uint64_t Machine = 0; Machine < 2; ++Machine)
    for (const char *Id : FastCorpus)
      Reference.harvest(*findBug(Id), 80, Machine);
  Reference.run();
  EXPECT_EQ(stateBytes(Sched), stateBytes(Reference));
}

//===----------------------------------------------------------------------===//
// Preemption: suspend, resume, byte-identical results
//===----------------------------------------------------------------------===//

/// The deterministic report stream of machine 0 running Bash + Memcached,
/// split into the coldest signature's reports (few occurrences, a
/// multi-iteration campaign) and everything else (includes a signature hot
/// enough to preempt it).
struct PreemptStream {
  std::vector<FleetFailureReport> Cold, Rest;
  uint64_t ColdDigest = 0;

  PreemptStream() {
    std::vector<FleetFailureReport> Stream;
    for (const char *Id : {"Bash-108885", "Memcached-2019-11596"})
      simulateMachine(*findBug(Id), 200, /*MachineId=*/0, RootSeed,
                      VmConfig(),
                      [&](const FleetFailureReport &R) {
                        Stream.push_back(R);
                      });
    std::map<uint64_t, uint64_t> Counts;
    for (const FleetFailureReport &R : Stream)
      ++Counts[FailureSignature::of(R.Failure).Digest];
    uint64_t ColdCount = ~0ULL, HotCount = 0;
    for (const auto &[Digest, Count] : Counts) {
      if (Count < ColdCount) {
        ColdCount = Count;
        ColdDigest = Digest;
      }
      HotCount = std::max(HotCount, Count);
    }
    // The preemption premise: some bucket is strictly hotter than the
    // cold one and crosses the hot threshold used below. (EXPECT, not
    // ASSERT: fatal assertions cannot be used in a constructor.)
    EXPECT_GT(HotCount, ColdCount);
    EXPECT_GE(HotCount, 4u);
    for (FleetFailureReport &R : Stream)
      (FailureSignature::of(R.Failure).Digest == ColdDigest ? Cold : Rest)
          .push_back(std::move(R));
  }
};

FleetConfig preemptConfig() {
  FleetConfig FC;
  FC.RootSeed = RootSeed;
  FC.Preempt.Enabled = true;
  FC.Preempt.HotOccurrences = 4;
  return FC;
}

TEST(Preemption, HotBucketSuspendsWeakestCampaignAndResumesByteIdentical) {
  PreemptStream Stream;

  // Uninterrupted control: same submissions, stepped straight to done.
  FleetScheduler Control(preemptConfig());
  for (const FleetFailureReport &R : Stream.Cold)
    Control.submit(R);
  for (const FleetFailureReport &R : Stream.Rest)
    Control.submit(R);
  Control.stepCampaigns();
  ASSERT_FALSE(Control.hasPendingWork());
  EXPECT_EQ(Control.totalPreemptions(), 0u)
      << "nothing to preempt for: all buckets known before stepping";

  // Preempted run: the cold bucket starts first and is mid-campaign when
  // the hot bucket arrives.
  FleetScheduler Sched(preemptConfig());
  for (const FleetFailureReport &R : Stream.Cold)
    Sched.submit(R);
  EXPECT_EQ(Sched.stepCampaigns(2), 2u);
  ASSERT_EQ(Sched.numActive(), 1u);
  ASSERT_FALSE(Sched.getCampaigns()[0].Completed)
      << "premise: the cold campaign must still be mid-flight";

  for (const FleetFailureReport &R : Stream.Rest)
    Sched.submit(R);
  Sched.stepCampaigns(1);
  EXPECT_EQ(Sched.totalPreemptions(), 1u);
  EXPECT_EQ(Sched.numSuspended(), 1u);
  EXPECT_TRUE(Sched.getCampaigns()[0].Suspended);
  EXPECT_GE(Sched.getCampaigns()[0].IterationsDone, 2u);

  // Mid-flight checkpoint state is persisted for suspended campaigns...
  std::string Mid = stateBytes(Sched);
  EXPECT_NE(Mid.find("suspended 1"), std::string::npos);
  EXPECT_NE(Mid.find("iterationsdone "), std::string::npos);

  Sched.stepCampaigns();
  ASSERT_FALSE(Sched.hasPendingWork());
  EXPECT_EQ(Sched.numSuspended(), 0u);
  EXPECT_EQ(Sched.snapshotReport().Preemptions, 1u);

  // ...and gone from the final file: byte-identical to the uninterrupted
  // run, test cases included.
  EXPECT_EQ(stateBytes(Sched), stateBytes(Control));
  const Campaign *Preempted = nullptr, *Clean = nullptr;
  for (const Campaign &C : Sched.getCampaigns())
    if (C.Sig.Digest == Stream.ColdDigest)
      Preempted = &C;
  for (const Campaign &C : Control.getCampaigns())
    if (C.Sig.Digest == Stream.ColdDigest)
      Clean = &C;
  ASSERT_TRUE(Preempted && Clean);
  EXPECT_EQ(Preempted->Preemptions, 1u);
  EXPECT_EQ(Preempted->Report.TestCase.Bytes, Clean->Report.TestCase.Bytes);
  EXPECT_EQ(Preempted->Report.TestCase.Args, Clean->Report.TestCase.Args);
  EXPECT_EQ(Preempted->IterationsDone, Clean->IterationsDone)
      << "resume must continue the parked session, not restart it";
}

TEST(Preemption, CrossProcessResumeOfSuspendedCampaignIsByteIdentical) {
  PreemptStream Stream;

  FleetScheduler Control(preemptConfig());
  for (const FleetFailureReport &R : Stream.Cold)
    Control.submit(R);
  for (const FleetFailureReport &R : Stream.Rest)
    Control.submit(R);
  Control.stepCampaigns();

  // Preempt, then kill the process at the checkpoint: the suspended
  // campaign crosses processes through the state file alone.
  std::string StateFile =
      freshDir("preempt_xproc") + "/fleet.state";
  {
    FleetScheduler Dying(preemptConfig());
    for (const FleetFailureReport &R : Stream.Cold)
      Dying.submit(R);
    Dying.stepCampaigns(2);
    for (const FleetFailureReport &R : Stream.Rest)
      Dying.submit(R);
    Dying.stepCampaigns(1);
    ASSERT_EQ(Dying.numSuspended(), 1u);
    std::string Err;
    ASSERT_TRUE(Dying.saveState(StateFile, &Err)) << Err;
  }

  // A suspended campaign loads as pending and re-executes
  // deterministically from scratch — same seed, same final bytes.
  FleetScheduler Resumed(preemptConfig());
  std::string Err;
  ASSERT_TRUE(Resumed.loadState(StateFile, &Err)) << Err;
  EXPECT_TRUE(Resumed.hasPendingWork());
  Resumed.stepCampaigns();
  ASSERT_FALSE(Resumed.hasPendingWork());
  EXPECT_EQ(stateBytes(Resumed), stateBytes(Control));
}

//===----------------------------------------------------------------------===//
// Live telemetry: /healthz watchdog flip, /status, periodic snapshots
//===----------------------------------------------------------------------===//

/// Drives the daemon's HTTP handler directly — same code path as a real
/// scrape, minus the socket (the socket itself is NetTest.cpp's job).
net::HttpResponse probe(CollectorDaemon &Daemon, const std::string &Path) {
  net::HttpRequest Req;
  Req.Method = "GET";
  Req.Path = Path;
  return Daemon.handleHttp(Req);
}

TEST(Telemetry, HealthzFlipsUnhealthyOnMissedCycleDeadline) {
  std::string Spool = freshDir("wd_healthz");
  std::string Diag = freshDir("wd_healthz_diag");
  publishCraftedFile(Spool);

  // Two failing drain attempts put two backoff sleeps inside cycle 1 —
  // the sleep hook is the deterministic stand-in for "an external scraper
  // probes while the cycle is wedged".
  FaultFs FF;
  std::vector<Failpoint> Points;
  ASSERT_TRUE(parseFaultSpec("createdir:fail:path=quarantine:fire=2", Points));
  for (const Failpoint &P : Points)
    FF.addFailpoint(P);

  TestDaemonRig Rig(Spool, "", &FF);
  Rig.Config.CycleDeadlineMs = 1000;
  Rig.Config.StallDiagDir = Diag;

  CollectorDaemon *Live = nullptr;
  std::vector<int> ProbeStatuses;
  Rig.Config.Sleep = [&](uint64_t Ms) {
    Rig.Clock.advanceNs(Ms * 1'000'000);
    // Blow straight through the 1 s cycle deadline, then probe.
    Rig.Clock.advanceNs(2'000'000'000);
    net::HttpResponse H = probe(*Live, "/healthz");
    ProbeStatuses.push_back(H.Status);
    if (H.Status == 503) {
      EXPECT_NE(H.Body.find("status: unhealthy"), std::string::npos) << H.Body;
    }
    // /metrics keeps serving while unhealthy — a stall is exactly when
    // the scrape matters most.
    EXPECT_EQ(probe(*Live, "/metrics").Status, 200);
  };

  FleetScheduler Sched((FleetConfig()));
  CollectorDaemon Daemon(Rig.Config, Sched);
  Live = &Daemon;
  ASSERT_TRUE(Daemon.runCycle());

  ASSERT_GE(ProbeStatuses.size(), 1u);
  EXPECT_EQ(ProbeStatuses[0], 503)
      << "the first probe past the deadline must already see unhealthy";
  EXPECT_EQ(Daemon.watchdog().trips(), 1u)
      << "one trip per armed cycle, not one per probe";
  EXPECT_EQ(Daemon.watchdog().lastTripCycle(), 1u);

  // The trip dumped one-shot stall diagnostics.
  EXPECT_TRUE(FsOps::real().exists(Diag + "/stall-cycle1.metrics.json"));
  EXPECT_TRUE(FsOps::real().exists(Diag + "/stall-cycle1.spans.jsonl"));

  // The late cycle finished and disarmed: healthy again, and a clean
  // follow-up cycle stays healthy without growing the trip count.
  EXPECT_EQ(probe(Daemon, "/healthz").Status, 200);
  FF.clearFailpoints();
  ASSERT_TRUE(Daemon.runCycle());
  EXPECT_EQ(probe(Daemon, "/healthz").Status, 200);
  EXPECT_EQ(Daemon.watchdog().trips(), 1u);
}

TEST(Telemetry, StatusEndpointReportsCampaignTable) {
  std::string Spool = freshDir("status_table");
  publishCraftedFile(Spool);
  FleetScheduler Sched((FleetConfig()));
  TestDaemonRig Rig(Spool);
  CollectorDaemon Daemon(Rig.Config, Sched);
  ASSERT_TRUE(Daemon.runCycle());

  net::HttpResponse R = probe(Daemon, "/status");
  EXPECT_EQ(R.Status, 200);
  EXPECT_EQ(R.ContentType, "application/json; charset=utf-8");
  std::string Err;
  EXPECT_TRUE(obs::validateJson(R.Body, &Err)) << Err << "\n" << R.Body;
  // Both crafted buckets triaged; unknown bug ids complete inline.
  EXPECT_NE(R.Body.find("\"bug-a\""), std::string::npos) << R.Body;
  EXPECT_NE(R.Body.find("\"bug-b\""), std::string::npos) << R.Body;
  EXPECT_NE(R.Body.find("\"completed\""), std::string::npos) << R.Body;
  EXPECT_NE(R.Body.find("\"spool_depth\""), std::string::npos);
  EXPECT_NE(R.Body.find("\"watchdog\""), std::string::npos);

  // Query strings are stripped; unknown paths 404.
  EXPECT_EQ(probe(Daemon, "/status?pretty=1").Status, 200);
  EXPECT_EQ(probe(Daemon, "/nope").Status, 404);
}

TEST(Telemetry, MetricsEndpointIsValidPrometheusExposition) {
  std::string Spool = freshDir("metrics_endpoint");
  publishCraftedFile(Spool);
  FleetScheduler Sched((FleetConfig()));
  TestDaemonRig Rig(Spool);
  CollectorDaemon Daemon(Rig.Config, Sched);
  ASSERT_TRUE(Daemon.runCycle());

  net::HttpResponse R = probe(Daemon, "/metrics");
  EXPECT_EQ(R.Status, 200);
  EXPECT_EQ(R.ContentType, obs::promContentType());
  std::string Err;
  EXPECT_TRUE(obs::promValidateExposition(R.Body, &Err)) << Err;
  EXPECT_NE(R.Body.find("daemon_cycles_total"), std::string::npos);
}

TEST(Telemetry, MetricsSnapshotsEveryNCycles) {
  std::string Spool = freshDir("metrics_every");
  std::string Path = freshDir("metrics_every_out") + "/metrics.json";
  FleetScheduler Sched((FleetConfig()));
  TestDaemonRig Rig(Spool);
  Rig.Config.MetricsEveryCycles = 2;
  Rig.Config.MetricsJsonPath = Path;
  CollectorDaemon Daemon(Rig.Config, Sched);
  for (int I = 0; I < 4; ++I)
    ASSERT_TRUE(Daemon.runCycle());

  EXPECT_EQ(Daemon.getStats().MetricsSnapshots, 2u) << "cycles 2 and 4";
  ASSERT_TRUE(FsOps::real().exists(Path));
  EXPECT_FALSE(FsOps::real().exists(Path + ".tmp"))
      << "snapshots publish by rename; the temp must not linger";
  std::vector<uint8_t> Raw;
  ASSERT_EQ(FsOps::real().readFile(Path, Raw), FsStatus::Ok);
  std::string Body(Raw.begin(), Raw.end());
  std::string Err;
  EXPECT_TRUE(obs::validateJson(Body, &Err)) << Err;
  EXPECT_NE(Body.find("daemon.cycles"), std::string::npos);
}

TEST(Telemetry, MetricsSnapshotFailureIsCountedAndSurvived) {
  std::string Spool = freshDir("metrics_fail");
  std::string Path = freshDir("metrics_fail_out") + "/metrics.json";
  FaultFs FF;
  std::vector<Failpoint> Points;
  ASSERT_TRUE(parseFaultSpec("write:fail:path=metrics.json:fire=0", Points));
  for (const Failpoint &P : Points)
    FF.addFailpoint(P);

  TestDaemonRig Rig(Spool, "", &FF);
  Rig.Config.MetricsEveryCycles = 1;
  Rig.Config.MetricsJsonPath = Path;
  FleetScheduler Sched((FleetConfig()));
  CollectorDaemon Daemon(Rig.Config, Sched);
  // A failed snapshot is counted, never fatal to the cycle.
  ASSERT_TRUE(Daemon.runCycle());
  EXPECT_EQ(Daemon.getStats().MetricsSnapshots, 0u);
  EXPECT_EQ(Daemon.getStats().MetricsSnapshotFailures, 1u);
  EXPECT_FALSE(FsOps::real().exists(Path));
  EXPECT_FALSE(FsOps::real().exists(Path + ".tmp"));
}

TEST(Telemetry, ListenerServesConcurrentScrapesWhileCyclesRun) {
  std::string Spool = freshDir("live_listener");
  publishCraftedFile(Spool);

  // Real clock on purpose: the HTTP thread and the cycle thread race for
  // real here, which is what the TSan CI job is after. VirtualClock is a
  // single-threaded seam and must stay out of this test.
  DaemonConfig DC;
  DC.Collector.SpoolDir = Spool;
  DC.Listen = "127.0.0.1:0";
  DC.CycleDeadlineMs = 60'000; // Generous: must never trip on loopback.
  FleetScheduler Sched((FleetConfig()));
  CollectorDaemon Daemon(DC, Sched);
  std::string Err;
  ASSERT_TRUE(Daemon.start(&Err)) << Err;
  uint16_t Port = Daemon.listenPort();
  ASSERT_NE(Port, 0);

  std::atomic<bool> Done{false};
  std::atomic<unsigned> Scrapes{0}, Failures{0};
  std::thread Scraper([&] {
    const char *Paths[] = {"/metrics", "/healthz", "/status"};
    for (unsigned I = 0; !Done.load(std::memory_order_acquire); ++I) {
      net::HttpClientResponse R;
      if (net::httpGet("127.0.0.1", Port, Paths[I % 3], R) && R.Status == 200)
        Scrapes.fetch_add(1, std::memory_order_relaxed);
      else
        Failures.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int Cycle = 0; Cycle < 5; ++Cycle)
    ASSERT_TRUE(Daemon.runCycle());
  Done.store(true, std::memory_order_release);
  Scraper.join();

  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_GT(Scrapes.load(), 0u);

  // One final scrape of each endpoint, checked in full.
  net::HttpClientResponse R;
  ASSERT_TRUE(net::httpGet("127.0.0.1", Port, "/metrics", R, &Err)) << Err;
  EXPECT_TRUE(obs::promValidateExposition(R.Body, &Err)) << Err;
  ASSERT_TRUE(net::httpGet("127.0.0.1", Port, "/status", R, &Err)) << Err;
  EXPECT_TRUE(obs::validateJson(R.Body, &Err)) << Err;
  ASSERT_TRUE(net::httpGet("127.0.0.1", Port, "/healthz", R, &Err)) << Err;
  EXPECT_EQ(R.Status, 200);
  EXPECT_NE(R.Body.find("status: ok"), std::string::npos) << R.Body;
}

} // namespace
