//===- SymexTest.cpp - Shepherded symbolic execution tests -------------------===//
//
// End-to-end checks of the reconstruction pipeline without iterative data
// recording: run a failing program under tracing, decode the trace, follow
// it symbolically, generate an input, and validate the input by replaying
// it on the concrete VM.
//
//===----------------------------------------------------------------------===//

#include "lang/Codegen.h"
#include "symex/SymExecutor.h"
#include "trace/Trace.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace er;

namespace {

struct Pipeline {
  std::unique_ptr<Module> M;
  ExprContext Ctx;
  SolverConfig SolverCfg;

  explicit Pipeline(const std::string &Src) {
    CompileResult R = compileMiniLang(Src);
    EXPECT_TRUE(R.ok()) << R.Error;
    M = std::move(R.M);
  }

  /// Runs the program, expects a failure, reconstructs, and returns the
  /// symex result (validating any generated input by replay).
  SymexResult reconstruct(const ProgramInput &In, bool ExpectValidReplay,
                          VmConfig VmCfg = VmConfig()) {
    TraceConfig TC;
    TraceRecorder Rec(TC);
    Interpreter VM(*M, VmCfg);
    RunResult RR = VM.run(In, &Rec);
    EXPECT_EQ(RR.Status, ExitStatus::Failure) << "program must fail";

    ConstraintSolver Solver(Ctx, SolverCfg);
    ShepherdedExecutor SE(*M, Ctx, Solver, SymexConfig());
    SymexResult SR = SE.run(Rec.decode(), RR.Failure);

    if (SR.Status == SymexStatus::Reproduced && ExpectValidReplay) {
      Interpreter Replay(*M, VmCfg);
      RunResult RepR = Replay.run(SR.GeneratedInput);
      EXPECT_EQ(RepR.Status, ExitStatus::Failure)
          << "generated input must fail: " << SR.GeneratedInput.describe();
      if (RepR.Status == ExitStatus::Failure) {
        EXPECT_TRUE(RepR.Failure.sameFailure(RR.Failure))
            << "generated input must reproduce the same failure";
      }
    }
    return SR;
  }
};

} // namespace

TEST(Symex, ReconstructsAssertFailureFromArgs) {
  Pipeline P(R"(
    fn main() -> i64 {
      var x: i64 = input_arg(0);
      var y: i64 = input_arg(1);
      if (x > 100) {
        if (x + y == 150) {
          assert(x != 120);
        }
      }
      return 0;
    }
  )");
  ProgramInput In;
  In.Args = {120, 30};
  SymexResult R = P.reconstruct(In, /*ExpectValidReplay=*/true);
  ASSERT_EQ(R.Status, SymexStatus::Reproduced) << R.Detail;
  // The generated input need not equal (120, 30), but must satisfy the
  // path: x > 100, x + y == 150, x == 120 -> it is exactly (120, 30).
  ASSERT_EQ(R.GeneratedInput.Args.size(), 2u);
  EXPECT_EQ(R.GeneratedInput.Args[0], 120u);
  EXPECT_EQ(R.GeneratedInput.Args[1], 30u);
}

TEST(Symex, ReconstructsDivByZero) {
  Pipeline P(R"(
    fn main() -> i64 {
      var d: i64 = input_arg(0);
      var n: i64 = input_arg(1);
      return n / (d - 7);
    }
  )");
  ProgramInput In;
  In.Args = {7, 100};
  SymexResult R = P.reconstruct(In, true);
  ASSERT_EQ(R.Status, SymexStatus::Reproduced) << R.Detail;
  EXPECT_EQ(R.GeneratedInput.Args[0], 7u);
}

TEST(Symex, ReconstructsOutOfBoundsIndex) {
  Pipeline P(R"(
    global buf: u8[16];
    fn main() -> i64 {
      var i: i64 = input_arg(0);
      if (i >= 0) {
        buf[i] = 1;
      }
      return 0;
    }
  )");
  ProgramInput In;
  In.Args = {40};
  SymexResult R = P.reconstruct(In, true);
  ASSERT_EQ(R.Status, SymexStatus::Reproduced) << R.Detail;
  EXPECT_GE(R.GeneratedInput.Args[0], 16u);
}

TEST(Symex, ReconstructsFromByteStream) {
  Pipeline P(R"(
    fn main() -> i64 {
      var n: i64 = input_size();
      if (n < 4) { return 0; }
      var magic: u8 = input_byte();
      if (magic != 0x7f) { return 1; }
      var a: u8 = input_byte();
      var b: u8 = input_byte();
      var c: u8 = input_byte();
      if ((a as i64) + (b as i64) == 60) {
        assert(c != 9);
      }
      return 2;
    }
  )");
  ProgramInput In;
  In.Bytes = {0x7f, 25, 35, 9};
  SymexResult R = P.reconstruct(In, true);
  ASSERT_EQ(R.Status, SymexStatus::Reproduced) << R.Detail;
  ASSERT_GE(R.GeneratedInput.Bytes.size(), 4u);
  EXPECT_EQ(R.GeneratedInput.Bytes[0], 0x7f);
  EXPECT_EQ(R.GeneratedInput.Bytes[1] + R.GeneratedInput.Bytes[2], 60);
  EXPECT_EQ(R.GeneratedInput.Bytes[3], 9);
}

TEST(Symex, ReconstructsInputUnderrun) {
  Pipeline P(R"(
    fn main() -> i64 {
      var a: u8 = input_byte();
      var b: u8 = input_byte();
      return (a as i64) + (b as i64);
    }
  )");
  ProgramInput In;
  In.Bytes = {42}; // Second read underruns.
  SymexResult R = P.reconstruct(In, true);
  ASSERT_EQ(R.Status, SymexStatus::Reproduced) << R.Detail;
  EXPECT_EQ(R.GeneratedInput.Bytes.size(), 1u);
}

TEST(Symex, ReconstructsThroughCalls) {
  Pipeline P(R"(
    fn check(v: i64) -> i64 {
      if (v * 3 == 333) {
        abort("boom");
      }
      return v;
    }
    fn main() -> i64 {
      var x: i64 = input_arg(0);
      return check(x + 11);
    }
  )");
  ProgramInput In;
  In.Args = {100};
  SymexResult R = P.reconstruct(In, true);
  ASSERT_EQ(R.Status, SymexStatus::Reproduced) << R.Detail;
  EXPECT_EQ(R.GeneratedInput.Args[0], 100u);
}

TEST(Symex, ConcreteOnlyProgramReproducesImmediately) {
  // No symbolic data feeds the failure: reconstruction succeeds with an
  // empty input (failure on every run).
  Pipeline P(R"(
    fn main() -> i64 {
      var s: i64 = 0;
      for (var i: i64 = 0; i < 10; i = i + 1) { s = s + i; }
      assert(s != 45);
      return s;
    }
  )");
  SymexResult R = P.reconstruct(ProgramInput(), true);
  ASSERT_EQ(R.Status, SymexStatus::Reproduced) << R.Detail;
}

TEST(Symex, SymbolicMemoryReadReconstructed) {
  // A table lookup with a symbolic index feeding the failure: exercises the
  // address-enumeration path.
  Pipeline P(R"(
    global tab: u32[8] = {10, 20, 30, 40, 50, 60, 70, 80};
    fn main() -> i64 {
      var i: i64 = input_arg(0);
      if (i >= 0 && i < 8) {
        var v: u32 = tab[i];
        assert(v != 60);
      }
      return 0;
    }
  )");
  ProgramInput In;
  In.Args = {5};
  SymexResult R = P.reconstruct(In, true);
  ASSERT_EQ(R.Status, SymexStatus::Reproduced) << R.Detail;
  EXPECT_EQ(R.GeneratedInput.Args[0], 5u);
}

TEST(Symex, MultiThreadedReconstruction) {
  // The failure depends on input read in the main thread and state updated
  // by a worker; chunk replay must keep the cross-thread order.
  Pipeline P(R"(
    global flag: i64[1];
    fn worker(p: *i64) {
      var sum: i64 = 0;
      for (var i: i64 = 0; i < 200; i = i + 1) { sum = sum + i; }
      flag[0] = sum;
    }
    fn main() -> i64 {
      var x: i64 = input_arg(0);
      var d: i64[1];
      var t: i64 = spawn(worker, d);
      join(t);
      if (flag[0] == 19900) {
        assert(x != 77);
      }
      return 0;
    }
  )");
  ProgramInput In;
  In.Args = {77};
  SymexResult R = P.reconstruct(In, true);
  ASSERT_EQ(R.Status, SymexStatus::Reproduced) << R.Detail;
  EXPECT_EQ(R.GeneratedInput.Args[0], 77u);
}

TEST(Symex, StallsOnComplexSymbolicMemory) {
  // Fig. 3-style write chains over a large object with a tiny solver budget
  // must stall rather than reproduce.
  Pipeline P(R"(
    global V: u32[256];
    fn main() -> i64 {
      var a: u32 = input_arg(0) as u32;
      var b: u32 = input_arg(1) as u32;
      var c: u32 = input_arg(2) as u32;
      var d: u32 = input_arg(3) as u32;
      var x: u32 = a + b;
      if ((x < 256 && c < 256) && d < 256) {
        V[x] = 1;
        if (V[c] == 0) {
          V[c] = 512;
        }
        V[V[x]] = x;
        if (c < d) {
          if (V[V[d]] == x) {
            abort("stall target");
          }
        }
      }
      return 0;
    }
  )");
  P.SolverCfg.WorkBudget = 2000; // Deliberately tiny.
  ProgramInput In;
  In.Args = {0, 2, 0, 2};
  SymexResult R = P.reconstruct(In, false);
  EXPECT_EQ(R.Status, SymexStatus::Stalled) << R.Detail;
  // The snapshot must expose a symbolic write chain over V for key data
  // value selection.
  bool FoundChain = false;
  for (const auto &C : R.Snapshot.Chains)
    if (C.Name == "V" && !C.Writes.empty())
      FoundChain = true;
  EXPECT_TRUE(FoundChain);
}

TEST(Symex, TruncatedTraceReported) {
  Pipeline P(R"(
    fn main() -> i64 {
      var n: i64 = 0;
      for (var i: i64 = 0; i < 5000; i = i + 1) { n = n + i; }
      assert(n != 12497500);
      return 0;
    }
  )");
  TraceConfig TC;
  TC.BufferBytes = 128; // Far too small.
  TraceRecorder Rec(TC);
  Interpreter VM(*P.M, VmConfig());
  RunResult RR = VM.run(ProgramInput(), &Rec);
  ASSERT_EQ(RR.Status, ExitStatus::Failure);

  ConstraintSolver Solver(P.Ctx, P.SolverCfg);
  ShepherdedExecutor SE(*P.M, P.Ctx, Solver, SymexConfig());
  SymexResult SR = SE.run(Rec.decode(), RR.Failure);
  EXPECT_EQ(SR.Status, SymexStatus::TraceTruncated);
}

TEST(Symex, GeneratedInputDiffersButReproduces) {
  // Many inputs reach the same failure; the generated one need only follow
  // the same control flow (paper Section 5.2: "may not be the same input").
  Pipeline P(R"(
    fn main() -> i64 {
      var x: i64 = input_arg(0);
      if (x > 1000) {
        abort("big input");
      }
      return 0;
    }
  )");
  ProgramInput In;
  In.Args = {123456};
  SymexResult R = P.reconstruct(In, true);
  ASSERT_EQ(R.Status, SymexStatus::Reproduced) << R.Detail;
  EXPECT_GT(static_cast<int64_t>(R.GeneratedInput.Args[0]), 1000);
}
