//===- NetTest.cpp - Minimal HTTP server tests ------------------------------===//
//
// Covers src/net/HttpServer.*: request/response round trips on a real
// loopback socket, the abuse paths the daemon's telemetry listener must
// survive (slow-loris, oversized heads, malformed request lines, a full
// connection table), parseHostPort, and concurrent scrapes (the TSan CI
// job runs this suite, so the handler/stats paths get a data-race check
// for free). Timeouts in these tests are real but loopback-short.
//
//===----------------------------------------------------------------------===//

#include "net/HttpServer.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace er;

namespace {

/// Raw loopback client for the abuse paths httpGet cannot produce: sends
/// \p Bytes verbatim, then reads until EOF (or \p ReadToEof = false to
/// keep the socket open and return it via \p KeepFd).
std::string rawExchange(uint16_t Port, const std::string &Bytes,
                        bool ReadToEof = true, int *KeepFd = nullptr) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(Fd, 0);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
  EXPECT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)),
            0);
  if (!Bytes.empty()) {
    EXPECT_EQ(::send(Fd, Bytes.data(), Bytes.size(), 0),
              static_cast<ssize_t>(Bytes.size()));
  }
  if (!ReadToEof) {
    if (KeepFd)
      *KeepFd = Fd;
    return "";
  }
  std::string Out;
  char Buf[4096];
  for (;;) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      break;
    Out.append(Buf, static_cast<size_t>(N));
  }
  ::close(Fd);
  return Out;
}

/// Server whose handler echoes the path; the fixture every test starts
/// from.
struct EchoServer {
  net::HttpServer Server;

  explicit EchoServer(net::HttpServerConfig Config = {})
      : Server(std::move(Config), [](const net::HttpRequest &Req) {
          if (Req.Path == "/missing")
            return net::HttpResponse{404, "text/plain; charset=utf-8",
                                     "nope\n"};
          return net::HttpResponse{200, "text/plain; charset=utf-8",
                                   "path=" + Req.Path + "\n"};
        }) {
    std::string Err;
    EXPECT_TRUE(Server.start(&Err)) << Err;
    EXPECT_NE(Server.boundPort(), 0);
  }
};

} // namespace

TEST(HttpServer, ServesGetAndClosesConnection) {
  EchoServer S;
  net::HttpClientResponse R;
  std::string Err;
  ASSERT_TRUE(net::httpGet("127.0.0.1", S.Server.boundPort(), "/hello", R,
                           &Err))
      << Err;
  EXPECT_EQ(R.Status, 200);
  EXPECT_EQ(R.Body, "path=/hello\n");
  EXPECT_NE(R.Header.find("Connection: close"), std::string::npos);
  EXPECT_NE(R.Header.find("Content-Length: 12"), std::string::npos);

  ASSERT_TRUE(net::httpGet("127.0.0.1", S.Server.boundPort(), "/missing", R,
                           &Err))
      << Err;
  EXPECT_EQ(R.Status, 404);

  auto Stats = S.Server.statsSnapshot();
  EXPECT_EQ(Stats.Accepted, 2u);
  EXPECT_EQ(Stats.Requests, 2u);
  EXPECT_EQ(Stats.Responses2xx, 1u);
  EXPECT_EQ(Stats.Responses4xx, 1u);
}

TEST(HttpServer, RejectsNonGetWith405) {
  EchoServer S;
  std::string Resp = rawExchange(S.Server.boundPort(),
                                 "POST /metrics HTTP/1.1\r\n"
                                 "Host: x\r\n\r\n");
  EXPECT_NE(Resp.find("405"), std::string::npos) << Resp;
  EXPECT_EQ(S.Server.statsSnapshot().BadRequests, 1u);
}

TEST(HttpServer, RejectsMalformedRequestLineWith400) {
  EchoServer S;
  std::string Resp = rawExchange(S.Server.boundPort(), "GARBAGE\r\n\r\n");
  EXPECT_NE(Resp.find("400"), std::string::npos) << Resp;
}

TEST(HttpServer, RejectsOversizedHeadWith431) {
  net::HttpServerConfig Config;
  Config.MaxRequestBytes = 256;
  EchoServer S(Config);
  std::string Huge = "GET /" + std::string(1024, 'x') + " HTTP/1.1\r\n\r\n";
  std::string Resp = rawExchange(S.Server.boundPort(), Huge);
  EXPECT_NE(Resp.find("431"), std::string::npos) << Resp;
}

TEST(HttpServer, SlowLorisIsCutAtDeadline) {
  net::HttpServerConfig Config;
  Config.RequestTimeoutMs = 150; // Real but loopback-short.
  EchoServer S(Config);
  // Send half a request line, then stall past the deadline. The server
  // must answer 408 (best effort) and close rather than wait forever.
  std::string Resp = rawExchange(S.Server.boundPort(), "GET /slow");
  EXPECT_TRUE(Resp.empty() || Resp.find("408") != std::string::npos) << Resp;
  EXPECT_EQ(S.Server.statsSnapshot().Timeouts, 1u);
}

TEST(HttpServer, FullHouseAnswers503AtAccept) {
  net::HttpServerConfig Config;
  Config.MaxConnections = 1;
  Config.RequestTimeoutMs = 2000;
  EchoServer S(Config);

  // Occupy the single slot with a connection that never completes its
  // request, then connect again: the second accept must get 503.
  int Held = -1;
  rawExchange(S.Server.boundPort(), "GET /held", /*ReadToEof=*/false, &Held);
  ASSERT_GE(Held, 0);

  std::string Resp;
  // The holder's accept and the overflow accept race; retry briefly.
  for (int Attempt = 0; Attempt < 50 && Resp.empty(); ++Attempt) {
    Resp = rawExchange(S.Server.boundPort(), "GET /over HTTP/1.1\r\n\r\n");
    if (Resp.find("503") != std::string::npos)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(Resp.find("503"), std::string::npos) << Resp;
  EXPECT_GE(S.Server.statsSnapshot().Overflows, 1u);
  ::close(Held);
}

TEST(HttpServer, ConcurrentScrapesAllSucceed) {
  EchoServer S;
  constexpr unsigned Threads = 8, PerThread = 5;
  std::atomic<unsigned> Ok{0};
  std::vector<std::thread> Ts;
  for (unsigned I = 0; I < Threads; ++I)
    Ts.emplace_back([&, I] {
      for (unsigned K = 0; K < PerThread; ++K) {
        net::HttpClientResponse R;
        std::string Path = "/t" + std::to_string(I);
        if (net::httpGet("127.0.0.1", S.Server.boundPort(), Path, R) &&
            R.Status == 200 && R.Body == "path=" + Path + "\n")
          Ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Ok.load(), Threads * PerThread);
  EXPECT_EQ(S.Server.statsSnapshot().Responses2xx, Threads * PerThread);
}

TEST(HttpServer, StopIsIdempotentAndJoins) {
  auto *S = new EchoServer();
  uint16_t Port = S->Server.boundPort();
  net::HttpClientResponse R;
  std::string Err;
  ASSERT_TRUE(net::httpGet("127.0.0.1", Port, "/x", R, &Err)) << Err;
  S->Server.stop();
  S->Server.stop(); // Second stop is a no-op.
  EXPECT_FALSE(S->Server.running());
  EXPECT_FALSE(net::httpGet("127.0.0.1", Port, "/x", R, &Err));
  delete S; // Destructor after stop() must not double-close.
}

TEST(HttpServer, ParseHostPort) {
  std::string Host;
  uint16_t Port = 0;
  std::string Err;
  EXPECT_TRUE(net::parseHostPort("127.0.0.1:9464", Host, Port, &Err)) << Err;
  EXPECT_EQ(Host, "127.0.0.1");
  EXPECT_EQ(Port, 9464);

  EXPECT_TRUE(net::parseHostPort(":0", Host, Port));
  EXPECT_EQ(Host, "127.0.0.1"); // Empty host defaults to loopback.
  EXPECT_EQ(Port, 0);

  EXPECT_FALSE(net::parseHostPort("no-port", Host, Port, &Err));
  EXPECT_FALSE(net::parseHostPort("h:not-a-number", Host, Port, &Err));
  EXPECT_FALSE(net::parseHostPort("h:99999", Host, Port, &Err));
}
