//===- NetTest.cpp - Minimal HTTP server tests ------------------------------===//
//
// Covers src/net/HttpServer.* and src/net/ReportClient.*: request and
// POST-body round trips on a real loopback socket, the abuse paths the
// daemon's front end must survive (slow-loris, oversized heads, bodies
// that never arrive or overrun their Content-Length, malformed request
// lines, a full connection table), parseHostPort/parseHttpUrl, client
// deadlines against a stalled server, the upload client's retry/backoff
// policy, and concurrent scrapes (the TSan CI job runs this suite, so
// the handler/stats paths get a data-race check for free). Timeouts in
// these tests are real but loopback-short.
//
//===----------------------------------------------------------------------===//

#include "net/HttpServer.h"
#include "net/ReportClient.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <atomic>
#include <chrono>
#include <netinet/in.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace er;

namespace {

/// Raw loopback client for the abuse paths httpGet cannot produce: sends
/// \p Bytes verbatim, then reads until EOF (or \p ReadToEof = false to
/// keep the socket open and return it via \p KeepFd).
std::string rawExchange(uint16_t Port, const std::string &Bytes,
                        bool ReadToEof = true, int *KeepFd = nullptr) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(Fd, 0);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
  EXPECT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)),
            0);
  if (!Bytes.empty()) {
    EXPECT_EQ(::send(Fd, Bytes.data(), Bytes.size(), 0),
              static_cast<ssize_t>(Bytes.size()));
  }
  if (!ReadToEof) {
    if (KeepFd)
      *KeepFd = Fd;
    return "";
  }
  std::string Out;
  char Buf[4096];
  for (;;) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      break;
    Out.append(Buf, static_cast<size_t>(N));
  }
  ::close(Fd);
  return Out;
}

/// Server whose handler echoes the path (GET) or the body (POST); the
/// fixture every test starts from.
struct EchoServer {
  net::HttpServer Server;

  explicit EchoServer(net::HttpServerConfig Config = {})
      : Server(std::move(Config), [](const net::HttpRequest &Req) {
          net::HttpResponse R;
          if (Req.Path == "/missing") {
            R.Status = 404;
            R.Body = "nope\n";
          } else if (Req.Method == "POST") {
            R.Body = "echo:" + Req.Body;
          } else {
            R.Body = "path=" + Req.Path + "\n";
          }
          return R;
        }) {
    std::string Err;
    EXPECT_TRUE(Server.start(&Err)) << Err;
    EXPECT_NE(Server.boundPort(), 0);
  }
};

} // namespace

TEST(HttpServer, ServesGetAndClosesConnection) {
  EchoServer S;
  net::HttpClientResponse R;
  std::string Err;
  ASSERT_TRUE(net::httpGet("127.0.0.1", S.Server.boundPort(), "/hello", R,
                           &Err))
      << Err;
  EXPECT_EQ(R.Status, 200);
  EXPECT_EQ(R.Body, "path=/hello\n");
  EXPECT_NE(R.Header.find("Connection: close"), std::string::npos);
  EXPECT_NE(R.Header.find("Content-Length: 12"), std::string::npos);

  ASSERT_TRUE(net::httpGet("127.0.0.1", S.Server.boundPort(), "/missing", R,
                           &Err))
      << Err;
  EXPECT_EQ(R.Status, 404);

  auto Stats = S.Server.statsSnapshot();
  EXPECT_EQ(Stats.Accepted, 2u);
  EXPECT_EQ(Stats.Requests, 2u);
  EXPECT_EQ(Stats.Responses2xx, 1u);
  EXPECT_EQ(Stats.Responses4xx, 1u);
}

TEST(HttpServer, RejectsUnsupportedMethodWith405) {
  EchoServer S;
  std::string Resp = rawExchange(S.Server.boundPort(),
                                 "PUT /metrics HTTP/1.1\r\n"
                                 "Host: x\r\n\r\n");
  EXPECT_NE(Resp.find("405"), std::string::npos) << Resp;
  EXPECT_EQ(S.Server.statsSnapshot().BadRequests, 1u);
}

TEST(HttpServer, PostBodyRoundTrip) {
  EchoServer S;
  net::HttpClientResponse R;
  std::string Err;
  std::string Body(4096, 'p');
  Body[17] = '\0'; // Bodies are bytes, not text: NULs must survive.
  ASSERT_TRUE(net::httpPost("127.0.0.1", S.Server.boundPort(), "/up", Body,
                            "application/octet-stream", R, &Err))
      << Err;
  EXPECT_EQ(R.Status, 200);
  EXPECT_EQ(R.Body, "echo:" + Body);

  auto Stats = S.Server.statsSnapshot();
  EXPECT_EQ(Stats.PostRequests, 1u);
  EXPECT_EQ(Stats.PostBodyBytes, Body.size());
  EXPECT_EQ(Stats.Responses2xx, 1u);
}

TEST(HttpServer, ZeroLengthPostDispatches) {
  EchoServer S;
  net::HttpClientResponse R;
  std::string Err;
  ASSERT_TRUE(net::httpPost("127.0.0.1", S.Server.boundPort(), "/up", "",
                            "application/octet-stream", R, &Err))
      << Err;
  EXPECT_EQ(R.Status, 200);
  EXPECT_EQ(R.Body, "echo:");
  EXPECT_EQ(S.Server.statsSnapshot().PostRequests, 1u);
  EXPECT_EQ(S.Server.statsSnapshot().PostBodyBytes, 0u);
}

TEST(HttpServer, PostWithoutContentLengthIs411) {
  EchoServer S;
  std::string Resp = rawExchange(S.Server.boundPort(),
                                 "POST /up HTTP/1.1\r\nHost: x\r\n\r\nbody");
  EXPECT_NE(Resp.find("411"), std::string::npos) << Resp;
  EXPECT_GE(S.Server.statsSnapshot().BadRequests, 1u);
}

TEST(HttpServer, PostOverBodyCapIs413BeforeBodyRead) {
  net::HttpServerConfig Config;
  Config.MaxBodyBytes = 64;
  EchoServer S(Config);
  // Only the head is sent: the 413 must come from the declaration alone.
  std::string Resp = rawExchange(S.Server.boundPort(),
                                 "POST /up HTTP/1.1\r\nHost: x\r\n"
                                 "Content-Length: 65\r\n\r\n");
  EXPECT_NE(Resp.find("413"), std::string::npos) << Resp;
  EXPECT_EQ(S.Server.statsSnapshot().PostRequests, 0u);
}

TEST(HttpServer, PostShortBodyIsCut408AtDeadline) {
  net::HttpServerConfig Config;
  Config.RequestTimeoutMs = 150; // Real but loopback-short.
  EchoServer S(Config);
  // Promise 100 bytes, deliver 4, stall: the body phase deadline must
  // cut the connection rather than wait for the remainder forever.
  std::string Resp = rawExchange(S.Server.boundPort(),
                                 "POST /up HTTP/1.1\r\nHost: x\r\n"
                                 "Content-Length: 100\r\n\r\nstub");
  EXPECT_TRUE(Resp.empty() || Resp.find("408") != std::string::npos) << Resp;
  EXPECT_EQ(S.Server.statsSnapshot().Timeouts, 1u);
  EXPECT_EQ(S.Server.statsSnapshot().PostRequests, 0u);
}

TEST(HttpServer, PostBodyBeyondContentLengthIs400) {
  EchoServer S;
  std::string Resp = rawExchange(S.Server.boundPort(),
                                 "POST /up HTTP/1.1\r\nHost: x\r\n"
                                 "Content-Length: 2\r\n\r\nmore-than-two");
  EXPECT_NE(Resp.find("400"), std::string::npos) << Resp;
  EXPECT_EQ(S.Server.statsSnapshot().PostRequests, 0u);
}

TEST(HttpServer, Expect100ContinueGetsInterimResponse) {
  EchoServer S;
  int Fd = -1;
  rawExchange(S.Server.boundPort(),
              "POST /up HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n"
              "Expect: 100-continue\r\n\r\n",
              /*ReadToEof=*/false, &Fd);
  ASSERT_GE(Fd, 0);
  // The interim status must arrive before any body byte is sent.
  std::string Interim;
  char Buf[256];
  for (int Spin = 0; Spin < 100; ++Spin) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), MSG_DONTWAIT);
    if (N > 0) {
      Interim.append(Buf, static_cast<size_t>(N));
      if (Interim.find("\r\n\r\n") != std::string::npos)
        break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_NE(Interim.find("100 Continue"), std::string::npos) << Interim;

  ASSERT_EQ(::send(Fd, "hello", 5, 0), 5);
  std::string Final;
  for (;;) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      break;
    Final.append(Buf, static_cast<size_t>(N));
  }
  ::close(Fd);
  EXPECT_NE(Final.find("200"), std::string::npos) << Final;
  EXPECT_NE(Final.find("echo:hello"), std::string::npos) << Final;
  EXPECT_EQ(S.Server.statsSnapshot().ContinueSent, 1u);
}

TEST(HttpServer, AcceptShedAnswers503Everywhere) {
  EchoServer S;
  S.Server.setAcceptShed(true);
  EXPECT_TRUE(S.Server.acceptShedding());
  std::string Resp = rawExchange(S.Server.boundPort(),
                                 "GET /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(Resp.find("503"), std::string::npos) << Resp;
  EXPECT_NE(Resp.find("Retry-After"), std::string::npos) << Resp;
  EXPECT_GE(S.Server.statsSnapshot().ShedAccepts, 1u);

  S.Server.setAcceptShed(false);
  net::HttpClientResponse R;
  std::string Err;
  ASSERT_TRUE(net::httpGet("127.0.0.1", S.Server.boundPort(), "/ok", R, &Err))
      << Err;
  EXPECT_EQ(R.Status, 200);
}

TEST(HttpServer, RejectsMalformedRequestLineWith400) {
  EchoServer S;
  std::string Resp = rawExchange(S.Server.boundPort(), "GARBAGE\r\n\r\n");
  EXPECT_NE(Resp.find("400"), std::string::npos) << Resp;
}

TEST(HttpServer, RejectsOversizedHeadWith431) {
  net::HttpServerConfig Config;
  Config.MaxRequestBytes = 256;
  EchoServer S(Config);
  std::string Huge = "GET /" + std::string(1024, 'x') + " HTTP/1.1\r\n\r\n";
  std::string Resp = rawExchange(S.Server.boundPort(), Huge);
  EXPECT_NE(Resp.find("431"), std::string::npos) << Resp;
}

TEST(HttpServer, SlowLorisIsCutAtDeadline) {
  net::HttpServerConfig Config;
  Config.RequestTimeoutMs = 150; // Real but loopback-short.
  EchoServer S(Config);
  // Send half a request line, then stall past the deadline. The server
  // must answer 408 (best effort) and close rather than wait forever.
  std::string Resp = rawExchange(S.Server.boundPort(), "GET /slow");
  EXPECT_TRUE(Resp.empty() || Resp.find("408") != std::string::npos) << Resp;
  EXPECT_EQ(S.Server.statsSnapshot().Timeouts, 1u);
}

TEST(HttpServer, FullHouseAnswers503AtAccept) {
  net::HttpServerConfig Config;
  Config.MaxConnections = 1;
  Config.RequestTimeoutMs = 2000;
  EchoServer S(Config);

  // Occupy the single slot with a connection that never completes its
  // request, then connect again: the second accept must get 503.
  int Held = -1;
  rawExchange(S.Server.boundPort(), "GET /held", /*ReadToEof=*/false, &Held);
  ASSERT_GE(Held, 0);

  std::string Resp;
  // The holder's accept and the overflow accept race; retry briefly.
  for (int Attempt = 0; Attempt < 50 && Resp.empty(); ++Attempt) {
    Resp = rawExchange(S.Server.boundPort(), "GET /over HTTP/1.1\r\n\r\n");
    if (Resp.find("503") != std::string::npos)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(Resp.find("503"), std::string::npos) << Resp;
  EXPECT_GE(S.Server.statsSnapshot().Overflows, 1u);
  ::close(Held);
}

TEST(HttpServer, ConcurrentScrapesAllSucceed) {
  EchoServer S;
  constexpr unsigned Threads = 8, PerThread = 5;
  std::atomic<unsigned> Ok{0};
  std::vector<std::thread> Ts;
  for (unsigned I = 0; I < Threads; ++I)
    Ts.emplace_back([&, I] {
      for (unsigned K = 0; K < PerThread; ++K) {
        net::HttpClientResponse R;
        std::string Path = "/t" + std::to_string(I);
        if (net::httpGet("127.0.0.1", S.Server.boundPort(), Path, R) &&
            R.Status == 200 && R.Body == "path=" + Path + "\n")
          Ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Ok.load(), Threads * PerThread);
  EXPECT_EQ(S.Server.statsSnapshot().Responses2xx, Threads * PerThread);
}

TEST(HttpServer, StopIsIdempotentAndJoins) {
  auto *S = new EchoServer();
  uint16_t Port = S->Server.boundPort();
  net::HttpClientResponse R;
  std::string Err;
  ASSERT_TRUE(net::httpGet("127.0.0.1", Port, "/x", R, &Err)) << Err;
  S->Server.stop();
  S->Server.stop(); // Second stop is a no-op.
  EXPECT_FALSE(S->Server.running());
  EXPECT_FALSE(net::httpGet("127.0.0.1", Port, "/x", R, &Err));
  delete S; // Destructor after stop() must not double-close.
}

TEST(HttpServer, ParseHostPort) {
  std::string Host;
  uint16_t Port = 0;
  std::string Err;
  EXPECT_TRUE(net::parseHostPort("127.0.0.1:9464", Host, Port, &Err)) << Err;
  EXPECT_EQ(Host, "127.0.0.1");
  EXPECT_EQ(Port, 9464);

  EXPECT_TRUE(net::parseHostPort(":0", Host, Port));
  EXPECT_EQ(Host, "127.0.0.1"); // Empty host defaults to loopback.
  EXPECT_EQ(Port, 0);

  EXPECT_FALSE(net::parseHostPort("no-port", Host, Port, &Err));
  EXPECT_FALSE(net::parseHostPort("h:not-a-number", Host, Port, &Err));
  EXPECT_FALSE(net::parseHostPort("h:99999", Host, Port, &Err));
}

TEST(HttpServer, ParseHttpUrl) {
  std::string Host, Path, Err;
  uint16_t Port = 0;
  EXPECT_TRUE(net::parseHttpUrl("http://127.0.0.1:9464/metrics", Host, Port,
                                Path, &Err))
      << Err;
  EXPECT_EQ(Host, "127.0.0.1");
  EXPECT_EQ(Port, 9464);
  EXPECT_EQ(Path, "/metrics");

  EXPECT_TRUE(net::parseHttpUrl("http://localhost:80", Host, Port, Path));
  EXPECT_EQ(Host, "localhost");
  EXPECT_EQ(Port, 80);
  EXPECT_EQ(Path, "/"); // Missing path defaults to "/".

  EXPECT_FALSE(net::parseHttpUrl("https://h:1/x", Host, Port, Path, &Err));
  EXPECT_FALSE(net::parseHttpUrl("h:1/x", Host, Port, Path, &Err));
  EXPECT_FALSE(net::parseHttpUrl("http://h/x", Host, Port, Path, &Err));
  EXPECT_FALSE(net::parseHttpUrl("http://h:bad/x", Host, Port, Path, &Err));
}

TEST(HttpServer, HeaderValueIsCaseInsensitive) {
  std::string Head = "HTTP/1.1 429 Too Many Requests\r\n"
                     "Content-Type: text/plain\r\n"
                     "retry-after:  7 \r\n";
  EXPECT_EQ(net::headerValue(Head, "Retry-After"), "7");
  EXPECT_EQ(net::headerValue(Head, "content-type"), "text/plain");
  EXPECT_EQ(net::headerValue(Head, "X-Missing"), "");
}

TEST(HttpServer, ClientDeadlineCoversStalledServer) {
  // A listener that accepts (via the kernel backlog) but never responds:
  // the client must fail within its absolute deadline instead of hanging
  // on recv forever — the gap a per-recv SO_RCVTIMEO would not close if
  // the server trickled one byte per timeout.
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
  ASSERT_EQ(::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)), 0);
  ASSERT_EQ(::listen(Fd, 4), 0);
  socklen_t Len = sizeof(Addr);
  ASSERT_EQ(::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len), 0);
  uint16_t Port = ntohs(Addr.sin_port);

  net::HttpClientResponse R;
  std::string Err;
  auto Start = std::chrono::steady_clock::now();
  EXPECT_FALSE(net::httpGet("127.0.0.1", Port, "/never", R, &Err,
                            /*TimeoutMs=*/200));
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  EXPECT_LT(ElapsedMs, 2000) << "deadline did not bound the exchange";
  EXPECT_FALSE(Err.empty());
  ::close(Fd);
}

TEST(ReportClient, RetriesThrottleThenSucceeds) {
  // First two hits are shed with Retry-After; the third is accepted. The
  // client must absorb the 429s, honor the hint via its Sleep seam, and
  // land the frame.
  std::atomic<unsigned> Hits{0};
  net::HttpServerConfig Config;
  net::HttpServer Server(Config, [&](const net::HttpRequest &Req) {
    net::HttpResponse R;
    if (Hits.fetch_add(1) < 2) {
      R.Status = 429;
      R.Body = "shedding\n";
      R.ExtraHeaders.push_back({"Retry-After", "3"});
      return R;
    }
    R.Body = "accepted " + std::to_string(Req.Body.size()) + "\n";
    return R;
  });
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;

  std::vector<uint64_t> Sleeps;
  net::ReportClientConfig RC;
  RC.Sleep = [&](uint64_t Ms) { Sleeps.push_back(Ms); };
  net::PushResult PR =
      net::pushReport("127.0.0.1", Server.boundPort(), "frame-bytes", RC);
  EXPECT_TRUE(PR.Ok) << PR.Error;
  EXPECT_EQ(PR.Status, 200);
  EXPECT_EQ(PR.Attempts, 3u);
  EXPECT_EQ(PR.Throttled, 2u);
  ASSERT_EQ(Sleeps.size(), 2u);
  for (uint64_t Ms : Sleeps) {
    // Retry-After: 3 → 3000ms ± 25% jitter.
    EXPECT_GE(Ms, 2250u);
    EXPECT_LE(Ms, 3750u);
  }
}

TEST(ReportClient, PermanentRejectionFailsFast) {
  net::HttpServerConfig Config;
  net::HttpServer Server(Config, [](const net::HttpRequest &) {
    net::HttpResponse R;
    R.Status = 400;
    R.Body = "frame failed checksum\n";
    return R;
  });
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;

  unsigned SleepCalls = 0;
  net::ReportClientConfig RC;
  RC.Sleep = [&](uint64_t) { ++SleepCalls; };
  net::PushResult PR =
      net::pushReport("127.0.0.1", Server.boundPort(), "junk", RC);
  EXPECT_FALSE(PR.Ok);
  EXPECT_EQ(PR.Status, 400);
  EXPECT_EQ(PR.Attempts, 1u); // No retry: the same bytes would fail again.
  EXPECT_EQ(SleepCalls, 0u);
  EXPECT_NE(PR.Error.find("checksum"), std::string::npos) << PR.Error;
}

TEST(ReportClient, GivesUpAfterMaxRetriesWithBackoff) {
  // No server at all: every attempt is a connect failure, backoff doubles
  // (with ±25% jitter) until MaxRetries is exhausted.
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
  ASSERT_EQ(::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)), 0);
  socklen_t Len = sizeof(Addr);
  ASSERT_EQ(::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len), 0);
  uint16_t DeadPort = ntohs(Addr.sin_port);
  ::close(Fd); // Bound but never listened: connect gets RST immediately.

  std::vector<uint64_t> Sleeps;
  net::ReportClientConfig RC;
  RC.MaxRetries = 3;
  RC.BackoffMs = 100;
  RC.TimeoutMs = 500;
  RC.Sleep = [&](uint64_t Ms) { Sleeps.push_back(Ms); };
  net::PushResult PR = net::pushReport("127.0.0.1", DeadPort, "frame", RC);
  EXPECT_FALSE(PR.Ok);
  EXPECT_EQ(PR.Status, 0);
  EXPECT_EQ(PR.Attempts, 4u); // 1 + MaxRetries.
  ASSERT_EQ(Sleeps.size(), 3u);
  // 100, 200, 400 before jitter; each within ±25%.
  EXPECT_GE(Sleeps[1], Sleeps[0]);
  EXPECT_LE(Sleeps[0], 125u);
  EXPECT_GE(Sleeps[2], 300u);
  EXPECT_FALSE(PR.Error.empty());
}

TEST(ReportClient, PushReportUrlRejectsBadUrl) {
  net::PushResult PR = net::pushReportUrl("https://x:1/report", "frame");
  EXPECT_FALSE(PR.Ok);
  EXPECT_EQ(PR.Attempts, 0u);
  EXPECT_FALSE(PR.Error.empty());
}
