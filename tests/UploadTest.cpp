//===- UploadTest.cpp - Wire ingestion: POST /report end to end ------------===//
//
// Covers the network front end of ingestion (docs/INGEST.md, "Wire
// ingestion"): CollectorDaemon::handleUpload driven directly (no sockets)
// for the validation/publish/backpressure paths, and through a real
// loopback listener for the concurrent-uploads-during-drain race (the
// TSan CI job runs this suite). The invariants under test:
//
//  - An uploaded frame is published byte-identical to the file a local
//    SpoolWriter::flush would have produced, under the same
//    content-derived name — the drain cannot tell the transports apart.
//  - Exactly-once survives replays: a retried upload rename-overwrites
//    its twin, and records a drain already owns are dropped as
//    duplicates.
//  - A frame that fails CRC/framing lands in spool/quarantine/, never in
//    the spool proper.
//  - Past the high watermark the endpoint answers 429 with Retry-After
//    before looking at the bytes; at the critical watermark the listener
//    sheds at accept with 503.
//  - The adaptive schedule compresses the inter-cycle delay toward its
//    floor as pressure or drain volume rises, and never moves when
//    pinned to the classic fixed cadence.
//
//===----------------------------------------------------------------------===//

#include "ingest/CollectorDaemon.h"
#include "ingest/ReportCollector.h"
#include "ingest/ReportSpool.h"
#include "net/HttpServer.h"
#include "net/ReportClient.h"
#include "support/FaultFs.h"
#include "support/Fs.h"

#include "fleet/FleetScheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace er;
namespace fs = std::filesystem;

namespace {

/// Fresh, empty directory unique to the calling test.
std::string freshDir(const std::string &Name) {
  fs::path Dir = fs::path(testing::TempDir()) / ("er_upload_" + Name);
  fs::remove_all(Dir);
  fs::create_directories(Dir);
  return Dir.string();
}

FleetFailureReport makeReport(const std::string &BugId, unsigned Instr) {
  FleetFailureReport R;
  R.BugId = BugId;
  R.Failure.Kind = FailureKind::NullDeref;
  R.Failure.InstrGlobalId = Instr;
  R.Failure.CallStack = {1, 2};
  return R;
}

/// One three-record frame from \p Machine starting at \p FirstSeq — the
/// bytes `er_cli report --push` would send. BugIds are not in the
/// workload registry, so drained campaigns complete inline.
std::string makeFrame(uint64_t Machine, uint64_t FirstSeq = 1) {
  SpoolWriter Writer("", Machine, FirstSeq);
  Writer.append(makeReport("bug-a", 10));
  Writer.append(makeReport("bug-a", 10));
  Writer.append(makeReport("bug-b", 20));
  return Writer.takeFrame();
}

net::HttpRequest postReport(std::string Body) {
  net::HttpRequest Req;
  Req.Method = "POST";
  Req.Path = "/report";
  Req.Body = std::move(Body);
  return Req;
}

std::string readAll(const std::string &Path) {
  std::ifstream IS(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(IS),
                     std::istreambuf_iterator<char>());
}

uint64_t totalOccurrences(const FleetScheduler &Sched) {
  uint64_t Total = 0;
  for (const Campaign &C : Sched.getCampaigns())
    Total += C.Occurrences;
  return Total;
}

} // namespace

TEST(Upload, PublishesContentDerivedFileAndDrainDelivers) {
  std::string Spool = freshDir("roundtrip");
  FleetScheduler Sched((FleetConfig()));
  DaemonConfig DC;
  DC.Collector.SpoolDir = Spool;
  CollectorDaemon Daemon(DC, Sched);
  ASSERT_TRUE(Daemon.start());

  net::HttpResponse R = Daemon.handleHttp(postReport(makeFrame(7, 41)));
  EXPECT_EQ(R.Status, 200) << R.Body;
  EXPECT_NE(R.Body.find("\"accepted\":3"), std::string::npos) << R.Body;
  // The published name is derived from (machine, first sequence) — the
  // same name a local SpoolWriter::flush on machine 7 would have used.
  std::string Expect = "m0000000000000007-0000000000000029.ers";
  EXPECT_NE(R.Body.find(Expect), std::string::npos) << R.Body;
  EXPECT_TRUE(fs::exists(fs::path(Spool) / Expect));

  ASSERT_TRUE(Daemon.runCycle());
  EXPECT_EQ(Daemon.collectorStats().Submitted, 3u);
  EXPECT_EQ(totalOccurrences(Sched), 3u);
  EXPECT_TRUE(listSpoolFiles(Spool).empty()) << "drain must consume it";

  DaemonStatus Status = Daemon.statusSnapshot();
  EXPECT_EQ(Status.UploadsAccepted, 1u);
  EXPECT_EQ(Status.UploadsRejected, 0u);
}

TEST(Upload, UploadedFileIsByteIdenticalToLocalFlush) {
  // Same reports through both transports: flush publishes locally,
  // takeFrame + POST publishes over the wire. The on-disk results must
  // be indistinguishable, byte for byte, name for name.
  std::string FlushDir = freshDir("identity_flush");
  SpoolWriter Local(FlushDir, /*MachineId=*/5, /*FirstSequence=*/1);
  Local.append(makeReport("bug-a", 10));
  Local.append(makeReport("bug-a", 10));
  Local.append(makeReport("bug-b", 20));
  std::string Err;
  ASSERT_TRUE(Local.flush(&Err)) << Err;
  std::vector<std::string> Flushed = listSpoolFiles(FlushDir);
  ASSERT_EQ(Flushed.size(), 1u);

  std::string Spool = freshDir("identity_wire");
  FleetScheduler Sched((FleetConfig()));
  DaemonConfig DC;
  DC.Collector.SpoolDir = Spool;
  CollectorDaemon Daemon(DC, Sched);
  ASSERT_TRUE(Daemon.start());
  net::HttpResponse R = Daemon.handleHttp(postReport(makeFrame(5, 1)));
  ASSERT_EQ(R.Status, 200) << R.Body;
  std::vector<std::string> Uploaded = listSpoolFiles(Spool);
  ASSERT_EQ(Uploaded.size(), 1u);

  EXPECT_EQ(fs::path(Flushed[0]).filename(), fs::path(Uploaded[0]).filename());
  EXPECT_EQ(readAll(Flushed[0]), readAll(Uploaded[0]));
}

TEST(Upload, ReplayedUploadStaysExactlyOnce) {
  std::string Spool = freshDir("replay");
  FleetScheduler Sched((FleetConfig()));
  DaemonConfig DC;
  DC.Collector.SpoolDir = Spool;
  CollectorDaemon Daemon(DC, Sched);
  ASSERT_TRUE(Daemon.start());

  // A client whose 200 was lost retries the same frame: the replay
  // rename-overwrites its twin, so only one file exists to drain.
  std::string Frame = makeFrame(9, 1);
  EXPECT_EQ(Daemon.handleHttp(postReport(Frame)).Status, 200);
  EXPECT_EQ(Daemon.handleHttp(postReport(Frame)).Status, 200);
  EXPECT_EQ(listSpoolFiles(Spool).size(), 1u);
  ASSERT_TRUE(Daemon.runCycle());
  EXPECT_EQ(Daemon.collectorStats().Submitted, 3u);

  // A replay arriving after the drain republishes the file, but the
  // collector's high-water dedup already owns every record in it.
  EXPECT_EQ(Daemon.handleHttp(postReport(Frame)).Status, 200);
  ASSERT_TRUE(Daemon.runCycle());
  EXPECT_EQ(Daemon.collectorStats().DuplicatesDropped, 3u);
  EXPECT_EQ(Daemon.collectorStats().Submitted, 3u);
  EXPECT_EQ(totalOccurrences(Sched), 3u);
}

TEST(Upload, EmptyBodyIsRejected400) {
  std::string Spool = freshDir("empty");
  FleetScheduler Sched((FleetConfig()));
  DaemonConfig DC;
  DC.Collector.SpoolDir = Spool;
  CollectorDaemon Daemon(DC, Sched);
  ASSERT_TRUE(Daemon.start());

  net::HttpResponse R = Daemon.handleHttp(postReport(""));
  EXPECT_EQ(R.Status, 400);
  EXPECT_TRUE(listSpoolFiles(Spool).empty());
  // The status snapshot is rebuilt once per cycle, not per upload.
  ASSERT_TRUE(Daemon.runCycle());
  EXPECT_EQ(Daemon.statusSnapshot().UploadsRejected, 1u);
}

TEST(Upload, MalformedFrameIsQuarantinedNotSpooled) {
  std::string Spool = freshDir("quarantine");
  FleetScheduler Sched((FleetConfig()));
  DaemonConfig DC;
  DC.Collector.SpoolDir = Spool;
  CollectorDaemon Daemon(DC, Sched);
  ASSERT_TRUE(Daemon.start());

  // Flip one payload byte: the record CRC must catch it and the bytes
  // must land in the same triage directory a corrupt on-disk file would.
  std::string Frame = makeFrame(3, 1);
  Frame[Frame.size() / 2] ^= 0x40;
  net::HttpResponse R = Daemon.handleHttp(postReport(Frame));
  EXPECT_EQ(R.Status, 400);
  EXPECT_NE(R.Body.find("quarantined"), std::string::npos) << R.Body;

  EXPECT_TRUE(listSpoolFiles(Spool).empty())
      << "a bad frame must never become a drainable spool file";
  unsigned Quarantined = 0;
  for (const auto &E : fs::directory_iterator(fs::path(Spool) / "quarantine"))
    Quarantined += E.is_regular_file();
  EXPECT_EQ(Quarantined, 1u);

  // The drain afterwards sees a clean spool: nothing to count, nothing
  // to re-quarantine.
  ASSERT_TRUE(Daemon.runCycle());
  EXPECT_EQ(Daemon.collectorStats().Submitted, 0u);
  EXPECT_EQ(Daemon.statusSnapshot().UploadsRejected, 1u);
}

TEST(Upload, ThrottledWith429AndRetryAfterPastHighWatermark) {
  std::string Spool = freshDir("throttle");
  FleetScheduler Sched((FleetConfig()));
  DaemonConfig DC;
  DC.Collector.SpoolDir = Spool;
  DC.Pressure.HighFiles = 2;
  DC.Pressure.LowFiles = 1;
  CollectorDaemon Daemon(DC, Sched);
  ASSERT_TRUE(Daemon.start());

  // Fill the spool to the watermark behind the daemon's back (a fleet of
  // filesystem writers), then resample: uploads must now bounce.
  for (uint64_t M = 0; M < 2; ++M) {
    SpoolWriter W(Spool, /*MachineId=*/100 + M);
    W.append(makeReport("bug-a", 10));
    std::string Err;
    ASSERT_TRUE(W.flush(&Err)) << Err;
  }
  Daemon.pressure().sample();
  ASSERT_NE(Daemon.pressure().level(), PressureLevel::Ok);

  net::HttpResponse R = Daemon.handleHttp(postReport(makeFrame(4, 1)));
  EXPECT_EQ(R.Status, 429);
  ASSERT_EQ(R.ExtraHeaders.size(), 1u);
  EXPECT_EQ(R.ExtraHeaders[0].first, "Retry-After");
  EXPECT_GE(std::stoul(R.ExtraHeaders[0].second), 1u);
  EXPECT_TRUE(listSpoolFiles(Spool).size() == 2u)
      << "a throttled frame must not have been published";

  // The drain empties the spool; hysteresis releases below the low
  // watermark and the same frame lands. The cycle also rebuilds the
  // status snapshot with the throttle counter.
  ASSERT_TRUE(Daemon.runCycle());
  EXPECT_EQ(Daemon.statusSnapshot().UploadsThrottled, 1u);
  EXPECT_EQ(Daemon.pressure().level(), PressureLevel::Ok);
  EXPECT_EQ(Daemon.handleHttp(postReport(makeFrame(4, 1))).Status, 200);
}

TEST(Upload, AdaptiveDelayCompressesUnderPressureAndDrainVolume) {
  std::string Spool = freshDir("adaptive");
  FleetScheduler Sched((FleetConfig()));
  DaemonConfig DC;
  DC.Collector.SpoolDir = Spool;
  DC.DrainIntervalMs = 800;
  DC.Pressure.HighFiles = 4;
  DC.Pressure.LowFiles = 1;
  CollectorDaemon Daemon(DC, Sched);
  ASSERT_TRUE(Daemon.start());

  // Quiet daemon: the configured interval is the delay.
  EXPECT_EQ(Daemon.nextDrainDelayMs(), 800u);

  // Half the high watermark: the delay scales linearly toward the floor.
  for (uint64_t M = 0; M < 2; ++M) {
    SpoolWriter W(Spool, 200 + M);
    W.append(makeReport("bug-a", 10));
    std::string Err;
    ASSERT_TRUE(W.flush(&Err)) << Err;
  }
  Daemon.pressure().sample();
  uint64_t Half = Daemon.nextDrainDelayMs();
  EXPECT_LT(Half, 800u);
  EXPECT_GT(Half, 100u); // Derived floor is max(1, 800/8) = 100.

  // At/past the watermark the delay pins to the floor.
  for (uint64_t M = 2; M < 6; ++M) {
    SpoolWriter W(Spool, 200 + M);
    W.append(makeReport("bug-a", 10));
    std::string Err;
    ASSERT_TRUE(W.flush(&Err)) << Err;
  }
  Daemon.pressure().sample();
  EXPECT_EQ(Daemon.nextDrainDelayMs(), 100u);

  // Draining the backlog releases the pressure term, but a six-file
  // drain against AdaptiveBusyFiles = 8 keeps the arrival-rate term
  // hot: 800 - 700 * 6/8 = 275. Only a genuinely quiet cycle restores
  // the full interval.
  ASSERT_TRUE(Daemon.runCycle());
  EXPECT_EQ(Daemon.nextDrainDelayMs(), 275u);
  ASSERT_TRUE(Daemon.runCycle()); // Nothing to drain: quiet again.
  EXPECT_EQ(Daemon.nextDrainDelayMs(), 800u);

  // The fixed cadence never moves, whatever the spool looks like.
  DaemonConfig Fixed = DC;
  Fixed.AdaptiveDrain = false;
  Fixed.Collector.SpoolDir = freshDir("adaptive_fixed");
  FleetScheduler Sched2((FleetConfig()));
  CollectorDaemon Pinned(Fixed, Sched2);
  ASSERT_TRUE(Pinned.start());
  for (uint64_t M = 0; M < 8; ++M) {
    SpoolWriter W(Fixed.Collector.SpoolDir, 300 + M);
    W.append(makeReport("bug-a", 10));
    std::string Err;
    ASSERT_TRUE(W.flush(&Err)) << Err;
  }
  Pinned.pressure().sample();
  EXPECT_EQ(Pinned.nextDrainDelayMs(), 800u);
}

TEST(Upload, CriticalPressureShedsAtAccept) {
  std::string Spool = freshDir("shed");
  // Claims always fail: the drain survives (budget exhausted, files left
  // for next time), so the spool deterministically stays over critical
  // across the cycle whose publishStatus flips the shed valve.
  FaultFs FF;
  std::vector<Failpoint> Points;
  ASSERT_TRUE(parseFaultSpec("rename:fail:path=.ers:fire=0", Points));
  for (const Failpoint &P : Points)
    FF.addFailpoint(P);

  FleetScheduler Sched((FleetConfig()));
  DaemonConfig DC;
  DC.Collector.SpoolDir = Spool;
  DC.Collector.Fs = &FF;
  DC.Listen = "127.0.0.1:0";
  DC.Pressure.HighFiles = 1;
  DC.Pressure.LowFiles = 1;
  DC.Pressure.HighBytes = 1; // Ratio = bytes/1: trivially critical.
  CollectorDaemon Daemon(DC, Sched);
  ASSERT_TRUE(Daemon.start());
  ASSERT_NE(Daemon.listenPort(), 0u);

  // Healthy daemon first: the listener answers scrapes.
  net::HttpClientResponse R;
  std::string Err;
  ASSERT_TRUE(net::httpGet("127.0.0.1", Daemon.listenPort(), "/healthz", R,
                           &Err))
      << Err;
  EXPECT_EQ(R.Status, 200);

  SpoolWriter W(Spool, 50);
  for (unsigned I = 0; I < 8; ++I)
    W.append(makeReport("bug-critical-unregistered", 10));
  ASSERT_TRUE(W.flush(&Err)) << Err;
  ASSERT_TRUE(Daemon.runCycle());
  ASSERT_EQ(Daemon.statusSnapshot().Pressure, PressureLevel::Critical);

  // Every accept — scrape or upload alike — is now answered 503 with a
  // retry hint before any request byte is read. The answer is best
  // effort (a shed close can RST past an unlucky in-flight request), so
  // probe until a response parses — it must then be the 503.
  bool Got = false;
  for (int Attempt = 0; Attempt < 50 && !Got; ++Attempt)
    Got = net::httpGet("127.0.0.1", Daemon.listenPort(), "/healthz", R, &Err);
  ASSERT_TRUE(Got) << Err;
  EXPECT_EQ(R.Status, 503);
  EXPECT_FALSE(net::headerValue(R.Header, "Retry-After").empty()) << R.Header;

  // The disk heals, the next cycle drains below the low watermark, and
  // the valve releases.
  FF.clearFailpoints();
  ASSERT_TRUE(Daemon.runCycle());
  ASSERT_TRUE(net::httpGet("127.0.0.1", Daemon.listenPort(), "/healthz", R,
                           &Err))
      << Err;
  EXPECT_EQ(R.Status, 200);
}

TEST(Upload, ConcurrentUploadsDuringDrainsStayExactlyOnce) {
  // The TSan race: pusher threads POST over real sockets while the
  // control thread drains, and every record must be counted exactly
  // once. Distinct machines and sequences per thread, so the expected
  // unique total is exact.
  std::string Spool = freshDir("concurrent");
  FleetScheduler Sched((FleetConfig()));
  DaemonConfig DC;
  DC.Collector.SpoolDir = Spool;
  DC.Listen = "127.0.0.1:0";
  CollectorDaemon Daemon(DC, Sched);
  ASSERT_TRUE(Daemon.start());
  uint16_t Port = Daemon.listenPort();
  ASSERT_NE(Port, 0u);

  constexpr unsigned Pushers = 4, FramesPerPusher = 5, RecordsPerFrame = 3;
  std::atomic<unsigned> PushFailures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < Pushers; ++T)
    Threads.emplace_back([&, T] {
      net::ReportClientConfig RC;
      RC.JitterSeed = T + 1;
      for (unsigned F = 0; F < FramesPerPusher; ++F) {
        std::string Frame =
            makeFrame(/*Machine=*/T + 1,
                      /*FirstSeq=*/1 + F * RecordsPerFrame);
        net::PushResult PR = net::pushReport("127.0.0.1", Port, Frame, RC);
        if (!PR.Ok)
          PushFailures.fetch_add(1);
      }
    });

  // Drain concurrently with the pushes, then join and sweep the rest.
  for (unsigned Cycle = 0; Cycle < 6; ++Cycle)
    ASSERT_TRUE(Daemon.runCycle());
  for (std::thread &T : Threads)
    T.join();
  ASSERT_TRUE(Daemon.runCycle());

  EXPECT_EQ(PushFailures.load(), 0u);
  constexpr uint64_t Unique = Pushers * FramesPerPusher * RecordsPerFrame;
  const CollectorStats &CS = Daemon.collectorStats();
  EXPECT_EQ(CS.Submitted, Unique);
  EXPECT_EQ(totalOccurrences(Sched), Unique);
  EXPECT_TRUE(listSpoolFiles(Spool).empty());
  EXPECT_EQ(Daemon.statusSnapshot().UploadsAccepted,
            uint64_t(Pushers) * FramesPerPusher);
}
