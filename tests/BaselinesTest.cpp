//===- BaselinesTest.cpp - Record/replay and REPT baseline tests -------------===//

#include "baselines/RecordReplay.h"
#include "baselines/ReptRecovery.h"
#include "lang/Codegen.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace er;

namespace {

std::unique_ptr<Module> compile(const std::string &Src) {
  CompileResult R = compileMiniLang(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.M);
}

const char *RacyCounter = R"(
  global counter: i64[1];
  fn worker(p: *i64) {
    for (var i: i64 = 0; i < 150; i = i + 1) {
      var v: i64 = counter[0];
      counter[0] = v + 1;
    }
  }
  fn main() -> i64 {
    var d: i64[1];
    var t0: i64 = spawn(worker, d);
    var t1: i64 = spawn(worker, d);
    join(t0);
    join(t1);
    return counter[0];
  }
)";

} // namespace

TEST(RecordReplay, ReplayIsBitIdentical) {
  auto M = compile(RacyCounter);
  FullRecordReplay RR(*M);
  // Even for a racy program, the log pins the schedule: replay matches.
  for (uint64_t Seed : {1ull, 7ull, 42ull}) {
    VmConfig VC;
    VC.ScheduleSeed = Seed;
    VC.ChunkSize = 16;
    RecordLog Log = RR.record(ProgramInput(), VC);
    RunResult Replayed = RR.replay(Log);
    EXPECT_EQ(Replayed.RetVal, Log.Recorded.RetVal) << "seed " << Seed;
    EXPECT_EQ(Replayed.InstrCount, Log.Recorded.InstrCount);
  }
}

TEST(RecordReplay, ReplayReproducesFailures) {
  auto M = compile(R"(
    fn main() -> i64 {
      var x: i64 = input_arg(0);
      assert(x != 13);
      return x;
    }
  )");
  FullRecordReplay RR(*M);
  ProgramInput In;
  In.Args = {13};
  RecordLog Log = RR.record(In, VmConfig());
  ASSERT_EQ(Log.Recorded.Status, ExitStatus::Failure);
  RunResult Replayed = RR.replay(Log);
  ASSERT_EQ(Replayed.Status, ExitStatus::Failure);
  EXPECT_TRUE(Replayed.Failure.sameFailure(Log.Recorded.Failure));
}

TEST(RecordReplay, OverheadScalesWithEvents) {
  auto MFew = compile(R"(
    fn main() -> i64 {
      var s: i64 = input_arg(0);
      for (var i: i64 = 0; i < 5000; i = i + 1) { s = s + i; }
      return s;
    }
  )");
  auto MMany = compile(R"(
    fn main() -> i64 {
      var s: i64 = 0;
      var n: i64 = input_size();
      for (var i: i64 = 0; i < n; i = i + 1) {
        s = s + (input_byte() as i64);
      }
      return s;
    }
  )");
  Rng Noise(3);
  RrOverheadParams P;
  P.NoiseStdDev = 0;

  FullRecordReplay RRFew(*MFew);
  ProgramInput InFew;
  InFew.Args = {1};
  RecordLog LogFew = RRFew.record(InFew, VmConfig());

  FullRecordReplay RRMany(*MMany);
  ProgramInput InMany;
  for (int I = 0; I < 2000; ++I)
    InMany.Bytes.push_back(static_cast<uint8_t>(I));
  RecordLog LogMany = RRMany.record(InMany, VmConfig());

  double Few = FullRecordReplay::overheadPercent(LogFew.Recorded, P, Noise);
  double Many = FullRecordReplay::overheadPercent(LogMany.Recorded, P, Noise);
  EXPECT_LT(Few, 2.0) << "compute-bound programs record cheaply";
  EXPECT_GT(Many, Few) << "input-heavy programs pay per-event costs";
}

TEST(RecordReplay, MultithreadedPaysSerialization) {
  auto M = compile(RacyCounter);
  FullRecordReplay RR(*M);
  VmConfig VC;
  VC.ScheduleSeed = 5;
  RecordLog Log = RR.record(ProgramInput(), VC);
  Rng Noise(3);
  RrOverheadParams P;
  P.NoiseStdDev = 0;
  double Pct = FullRecordReplay::overheadPercent(Log.Recorded, P, Noise);
  EXPECT_GT(Pct, 40.0) << "rr serializes multithreaded execution";
}

//===----------------------------------------------------------------------===//
// REPT recovery
//===----------------------------------------------------------------------===//

TEST(Rept, RecoversConstantComputationNearFailure) {
  // A purely concrete program: everything derivable from constants is
  // recovered correctly.
  auto M = compile(R"(
    fn main() -> i64 {
      var s: i64 = 0;
      for (var i: i64 = 0; i < 50; i = i + 1) { s = s + i * 3; }
      assert(s != 3675);
      return s;
    }
  )");
  ReptReport R = reptRecover(*M, ProgramInput(), VmConfig());
  ASSERT_FALSE(R.Failed);
  uint64_t Correct = 0, Bad = 0;
  for (const auto &B : R.Buckets) {
    Correct += B.Correct;
    Bad += B.Incorrect;
  }
  EXPECT_GT(Correct, 0u);
  EXPECT_EQ(Bad, 0u) << "constant data flow must recover exactly";
}

TEST(Rept, InputsAreUnknown) {
  auto M = compile(R"(
    fn main() -> i64 {
      var a: i64 = input_arg(0);
      var b: i64 = a * 2 + 1;
      assert(b != 27);
      return b;
    }
  )");
  ProgramInput In;
  In.Args = {13};
  ReptReport R = reptRecover(*M, In, VmConfig());
  ASSERT_FALSE(R.Failed);
  uint64_t Unknown = 0;
  for (const auto &B : R.Buckets)
    Unknown += B.Unknown;
  EXPECT_GT(Unknown, 0u) << "unrecorded inputs cannot be recovered";
}

TEST(Rept, StaleMemoryGuessesGoWrongFarFromFailure) {
  // A cell is written before the trace window begins and read (then
  // overwritten) inside it: recovery's first in-window event for the cell
  // is the read, so it guesses the post-mortem (final) value — wrong, and
  // indistinguishable from a correct recovery. REPT's signature failure
  // mode.
  auto M = compile(R"(
    global cfg: i64[1];
    global snapshot: i64[1];
    fn main() -> i64 {
      cfg[0] = 7;                      // Written before the window.
      var filler: i64 = 0;
      for (var i: i64 = 0; i < 800; i = i + 1) { filler = filler + i; }
      snapshot[0] = cfg[0] + 100;      // In-window read: truth is 7.
      cfg[0] = 999;                    // The dump will say 999: stale.
      for (var i: i64 = 0; i < 400; i = i + 1) { filler = filler + i; }
      assert(filler != 399400);
      return snapshot[0] + filler;
    }
  )");
  // Window covers roughly the second half of the run only (the prefix with
  // the cfg write is outside it).
  ReptReport R = reptRecover(*M, ProgramInput(), VmConfig(), 8000);
  ASSERT_FALSE(R.Failed);
  uint64_t AnyBad = 0;
  for (const auto &B : R.Buckets)
    AnyBad += B.Incorrect;
  EXPECT_GT(AnyBad, 0u) << "stale-dump guesses must show up as incorrect";
}

TEST(Rept, AccuracyDegradesWithDistance) {
  // Phase 1 mixes input data into accumulators (unrecoverable); a reset
  // then makes phase 2 derivable from constants. Recovery quality must be
  // better near the failure (phase 2) than far from it (phase 1).
  auto M = compile(R"(
    global state: i64[16];
    fn main() -> i64 {
      var n: i64 = input_size();
      var acc: i64 = 0;
      for (var i: i64 = 0; i < n; i = i + 1) {
        var b: i64 = input_byte() as i64;
        var k: i64 = i % 16;
        state[k] = state[k] * 31 + b;
        acc = acc + state[k];
      }
      for (var k: i64 = 0; k < 16; k = k + 1) { state[k] = 0; }
      for (var i: i64 = 0; i < 2000; i = i + 1) {
        var k: i64 = i % 16;
        state[k] = state[k] + 3;
        acc = acc + state[k];
      }
      assert(n != 3000);
      return acc;
    }
  )");
  ProgramInput In;
  Rng R(9);
  for (int I = 0; I < 3000; ++I)
    In.Bytes.push_back(static_cast<uint8_t>(R.nextBounded(256)));
  ReptReport Rep = reptRecover(*M, In, VmConfig());
  ASSERT_FALSE(Rep.Failed);
  ASSERT_GE(Rep.Buckets.size(), 3u);
  const ReptBucket &Near = Rep.Buckets[0]; // < 1K from failure.
  const ReptBucket *Far = nullptr;
  for (const auto &B : Rep.Buckets)
    if (B.total() > 0)
      Far = &B; // Last populated (most distant).
  ASSERT_NE(Far, nullptr);
  ASSERT_GT(Near.total(), 0u);
  EXPECT_GT(Far->badFraction(), Near.badFraction())
      << "recovery quality must degrade with distance";
}
