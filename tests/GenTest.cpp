//===- GenTest.cpp - Generated bug corpus + schedule search ----------------===//
//
// Covers the generated workload factory (src/gen/) end to end:
//
//  - determinism: a fixed seed yields a byte-identical corpus, and the
//    corpus is prefix-stable (growing Count never rewrites earlier
//    campaigns), the property that makes sharded generation safe;
//  - taxonomy: round-robin class coverage, tag round-trips, oracle and
//    threading metadata;
//  - the `er-gen-campaign v1` wire format: write/load round-trip through
//    a real directory and rejection of malformed inputs;
//  - oracle fidelity: production inputs actually produce the declared
//    failure kind, and campaigns reconstruct through the full driver;
//  - schedule search: a planted data race whose recorded-order replay
//    misses is rescued by the Phase A order search, the persisted witness
//    replays the failure, and the witness survives a fleet state
//    save/load round-trip.
//
//===----------------------------------------------------------------------===//

#include "er/Driver.h"
#include "fleet/FleetPersist.h"
#include "fleet/FleetScheduler.h"
#include "gen/CorpusWriter.h"
#include "gen/GenConfig.h"
#include "obs/Metrics.h"
#include "obs/PromExport.h"
#include "support/Rng.h"
#include "vm/Interpreter.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

using namespace er;

namespace {

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "/" + Name;
}

std::string corpusBytes(const std::vector<gen::GeneratedCampaign> &Corpus) {
  std::string All;
  for (const auto &C : Corpus)
    All += gen::serializeCampaign(C);
  return All;
}

//===----------------------------------------------------------------------===//
// Determinism + taxonomy
//===----------------------------------------------------------------------===//

TEST(GenDeterminism, FixedSeedIsByteIdentical) {
  gen::GenConfig GC;
  GC.Seed = 7;
  GC.Count = 33;
  std::vector<gen::GeneratedCampaign> A = gen::generateCorpus(GC);
  std::vector<gen::GeneratedCampaign> B = gen::generateCorpus(GC);
  ASSERT_EQ(A.size(), 33u);
  EXPECT_EQ(corpusBytes(A), corpusBytes(B));
}

TEST(GenDeterminism, PrefixStableAcrossCounts) {
  // Campaign I depends only on (Seed, I): a bigger corpus appends, never
  // rewrites. This is what lets sharded / incremental generation compose.
  gen::GenConfig Small, Big;
  Small.Seed = Big.Seed = 9;
  Small.Count = 12;
  Big.Count = 45;
  std::vector<gen::GeneratedCampaign> S = gen::generateCorpus(Small);
  std::vector<gen::GeneratedCampaign> L = gen::generateCorpus(Big);
  ASSERT_EQ(S.size(), 12u);
  ASSERT_EQ(L.size(), 45u);
  for (size_t I = 0; I < S.size(); ++I)
    EXPECT_EQ(gen::serializeCampaign(S[I]), gen::serializeCampaign(L[I]))
        << "campaign " << I << " changed when Count grew";
}

TEST(GenCorpus, RoundRobinCoversTaxonomy) {
  gen::GenConfig GC;
  GC.Seed = 3;
  GC.Count = 2 * gen::NumBugClasses;
  std::vector<gen::GeneratedCampaign> Corpus = gen::generateCorpus(GC);
  std::map<gen::BugClass, unsigned> PerClass;
  unsigned Concurrency = 0;
  for (const auto &C : Corpus) {
    ++PerClass[C.Class];
    if (C.Multithreaded)
      ++Concurrency;
    EXPECT_EQ(C.Oracle, gen::bugClassOracle(C.Class)) << C.Id;
    EXPECT_EQ(C.Multithreaded, gen::bugClassMultithreaded(C.Class)) << C.Id;
    EXPECT_NE(C.Id.find(gen::bugClassTag(C.Class)), std::string::npos) << C.Id;
    EXPECT_FALSE(C.Source.empty()) << C.Id;
  }
  EXPECT_EQ(PerClass.size(), gen::NumBugClasses) << "round-robin missed a class";
  for (const auto &[Class, N] : PerClass)
    EXPECT_EQ(N, 2u) << gen::bugClassTag(Class);
  EXPECT_EQ(Concurrency, 2 * gen::NumConcurrencyClasses);
}

TEST(GenCorpus, ClassMaskFiltersAndTagsRoundTrip) {
  for (unsigned I = 0; I < gen::NumBugClasses; ++I) {
    gen::BugClass C = static_cast<gen::BugClass>(I);
    gen::BugClass Back;
    ASSERT_TRUE(gen::parseBugClassTag(gen::bugClassTag(C), Back));
    EXPECT_EQ(Back, C);
  }
  gen::BugClass Unknown;
  EXPECT_FALSE(gen::parseBugClassTag("notaclass", Unknown));

  gen::GenConfig GC;
  GC.Seed = 5;
  GC.Count = 9;
  GC.ClassMask = (1u << static_cast<unsigned>(gen::BugClass::DivByZero)) |
                 (1u << static_cast<unsigned>(gen::BugClass::Deadlock));
  for (const auto &C : gen::generateCorpus(GC))
    EXPECT_TRUE(C.Class == gen::BugClass::DivByZero ||
                C.Class == gen::BugClass::Deadlock)
        << C.Id;
}

//===----------------------------------------------------------------------===//
// Wire format
//===----------------------------------------------------------------------===//

TEST(GenCorpus, WriteLoadRoundTrip) {
  gen::GenConfig GC;
  GC.Seed = 21;
  GC.Count = gen::NumBugClasses;
  std::vector<gen::GeneratedCampaign> Corpus = gen::generateCorpus(GC);

  std::string Dir = tempPath("er_gen_corpus_rt");
  ASSERT_EQ(gen::writeCorpus(Dir, Corpus), "");

  std::string Err;
  std::vector<gen::GeneratedCampaign> Loaded = gen::loadCorpus(Dir, Err);
  ASSERT_EQ(Err, "");
  ASSERT_EQ(Loaded.size(), Corpus.size());
  for (size_t I = 0; I < Corpus.size(); ++I)
    EXPECT_EQ(gen::serializeCampaign(Loaded[I]),
              gen::serializeCampaign(Corpus[I]))
        << Corpus[I].Id;
}

TEST(GenCorpus, ParseRejectsMalformed) {
  gen::GeneratedCampaign Out;
  std::string Err;
  EXPECT_FALSE(gen::parseCampaign("", Out, Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(gen::parseCampaign("not-a-campaign v9\n", Out, Err));

  // A real campaign with its source block truncated mid-payload.
  gen::GenConfig GC;
  GC.Seed = 2;
  GC.Count = 1;
  std::string Wire = gen::serializeCampaign(gen::generateCorpus(GC)[0]);
  EXPECT_FALSE(gen::parseCampaign(Wire.substr(0, Wire.size() - 10), Out, Err));
  EXPECT_FALSE(Err.empty());
}

TEST(GenCorpus, ParseSkipsUnknownHeaderKeys) {
  // Forward compatibility: a newer writer may add keys; loaders skip them.
  gen::GenConfig GC;
  GC.Seed = 2;
  GC.Count = 1;
  gen::GeneratedCampaign C = gen::generateCorpus(GC)[0];
  std::string Wire = gen::serializeCampaign(C);
  size_t FirstEol = Wire.find('\n');
  ASSERT_NE(FirstEol, std::string::npos);
  Wire.insert(FirstEol + 1, "futurekey some value here\n");
  gen::GeneratedCampaign Out;
  std::string Err;
  ASSERT_TRUE(gen::parseCampaign(Wire, Out, Err)) << Err;
  EXPECT_EQ(gen::serializeCampaign(Out), gen::serializeCampaign(C));
}

//===----------------------------------------------------------------------===//
// Oracles + registry bridge
//===----------------------------------------------------------------------===//

TEST(GenOracle, ProductionInputsProduceDeclaredFailure) {
  // One campaign per single-threaded class: production inputs must reach
  // the planted bug within a modest run budget, and when the program does
  // fail it must fail with the declared oracle kind (fail-kind purity is
  // what makes the oracle usable as a reconstruction target).
  gen::GenConfig GC;
  GC.Seed = 31;
  GC.Count = gen::NumBugClasses;
  for (const auto &C : gen::generateCorpus(GC)) {
    if (C.Multithreaded)
      continue; // Concurrency oracles are covered by the driver tests.
    BugSpec Spec = gen::toBugSpec(C);
    std::unique_ptr<Module> M = compileBug(Spec);
    Rng R(1234);
    bool Fired = false;
    for (int Run = 0; Run < 400 && !Fired; ++Run) {
      VmConfig VC;
      VC.ChunkSize = Spec.VmChunkSize;
      VC.ScheduleSeed = R.next();
      Interpreter VM(*M, VC);
      RunResult RR = VM.run(Spec.ProductionInput(R));
      if (RR.Status != ExitStatus::Failure)
        continue;
      EXPECT_EQ(RR.Failure.Kind, C.Oracle) << C.Id;
      Fired = true;
    }
    EXPECT_TRUE(Fired) << C.Id << ": bug never fired in 400 production runs";
  }
}

TEST(GenOracle, PerfInputsNeverFault) {
  // The overhead experiments run perf inputs under instrumentation; a
  // faulting perf workload would poison every overhead number.
  gen::GenConfig GC;
  GC.Seed = 31;
  GC.Count = gen::NumBugClasses;
  for (const auto &C : gen::generateCorpus(GC)) {
    BugSpec Spec = gen::toBugSpec(C);
    std::unique_ptr<Module> M = compileBug(Spec);
    Rng R(99);
    for (int Run = 0; Run < 8; ++Run) {
      VmConfig VC;
      VC.ChunkSize = Spec.VmChunkSize;
      VC.ScheduleSeed = R.next();
      Interpreter VM(*M, VC);
      RunResult RR = VM.run(Spec.PerfInput(R));
      EXPECT_NE(RR.Status, ExitStatus::Failure)
          << C.Id << ": perf input faulted on run " << Run;
    }
  }
}

TEST(GenRegistry, GeneratedSpecsResolveThroughFindBug) {
  gen::GenConfig GC;
  GC.Seed = 17;
  GC.Count = 4;
  std::vector<gen::GeneratedCampaign> Corpus = gen::generateCorpus(GC);
  std::vector<BugSpec> Specs;
  for (const auto &C : Corpus)
    Specs.push_back(gen::toBugSpec(C));
  registerGeneratedSpecs(std::move(Specs));
  for (const auto &C : Corpus) {
    const BugSpec *Spec = findBug(C.Id);
    ASSERT_NE(Spec, nullptr) << C.Id;
    EXPECT_EQ(Spec->Source, C.Source);
  }
  // Hand-built specs still win the lookup, and deregistration works.
  EXPECT_NE(findBug("PHP-2012-2386"), nullptr);
  registerGeneratedSpecs({});
  EXPECT_EQ(findBug(Corpus[0].Id), nullptr);
}

//===----------------------------------------------------------------------===//
// End-to-end reconstruction
//===----------------------------------------------------------------------===//

ReconstructionReport reconstructCampaign(const gen::GeneratedCampaign &C,
                                         uint64_t Seed,
                                         unsigned TieBreakRetries = 3) {
  BugSpec Spec = gen::toBugSpec(C);
  std::unique_ptr<Module> M = compileBug(Spec);
  DriverConfig DC;
  DC.Seed = Seed;
  DC.Vm.ChunkSize = Spec.VmChunkSize;
  DC.Solver.WorkBudget = Spec.SolverWorkBudget;
  DC.MaxTieBreakRetries = TieBreakRetries;
  ReconstructionDriver Driver(*M, DC);
  return Driver.reconstruct(Spec.ProductionInput);
}

TEST(GenReconstruct, SingleThreadedCampaignReconstructs) {
  gen::GenConfig GC;
  GC.Seed = 31;
  GC.Count = gen::NumBugClasses;
  std::vector<gen::GeneratedCampaign> Corpus = gen::generateCorpus(GC);
  const gen::GeneratedCampaign *Bufov = nullptr;
  for (const auto &C : Corpus)
    if (C.Class == gen::BugClass::BufferOverflow)
      Bufov = &C;
  ASSERT_NE(Bufov, nullptr);
  ReconstructionReport Report = reconstructCampaign(*Bufov, 42);
  ASSERT_TRUE(Report.Success) << Report.FailureDetail;

  BugSpec Spec = gen::toBugSpec(*Bufov);
  std::unique_ptr<Module> M = compileBug(Spec);
  VmConfig VC;
  VC.ChunkSize = Spec.VmChunkSize;
  VC.ScheduleSeed = Report.ReplayScheduleSeed;
  Interpreter Replay(*M, VC);
  RunResult RR = Replay.run(Report.TestCase);
  ASSERT_EQ(RR.Status, ExitStatus::Failure);
  EXPECT_TRUE(RR.Failure.sameFailure(Report.Failure));
}

TEST(GenReconstruct, DeadlockCampaignReconstructs) {
  gen::GenConfig GC;
  GC.Seed = 11;
  GC.Count = 6;
  GC.ClassMask = 1u << static_cast<unsigned>(gen::BugClass::Deadlock);
  std::vector<gen::GeneratedCampaign> Corpus = gen::generateCorpus(GC);
  ASSERT_FALSE(Corpus.empty());
  ReconstructionReport Report = reconstructCampaign(Corpus[0], 7);
  ASSERT_TRUE(Report.Success) << Report.FailureDetail;
  EXPECT_EQ(Report.Failure.Kind, FailureKind::Deadlock);
}

//===----------------------------------------------------------------------===//
// Schedule search
//===----------------------------------------------------------------------===//

TEST(SchedSearch, RescuesRaceCampaignAndWitnessReplays) {
  // The planted data race couples an input byte to a racily-read shared
  // cursor, so a symex misorder at tied chunk timestamps pins a wrong
  // byte: the reconstructed input validates only under the interleaving
  // symex assumed, which the recorded-seed replay need not pick. With
  // tie-break retries off, such campaigns reach the schedule-search
  // fallback; scan a few (campaign, seed) pairs until one does.
  gen::GenConfig GC;
  GC.Seed = 11;
  GC.Count = 60;
  GC.ClassMask = (1u << static_cast<unsigned>(gen::BugClass::DataRace)) |
                 (1u << static_cast<unsigned>(gen::BugClass::LostUpdate)) |
                 (1u << static_cast<unsigned>(gen::BugClass::Deadlock));
  std::vector<gen::GeneratedCampaign> Corpus = gen::generateCorpus(GC);

  const gen::GeneratedCampaign *Rescued = nullptr;
  ReconstructionReport Report;
  for (const auto &C : Corpus) {
    if (C.Class != gen::BugClass::DataRace || Rescued)
      continue;
    for (uint64_t K = 1; K <= 4 && !Rescued; ++K) {
      ReconstructionReport R =
          reconstructCampaign(C, K * 7919, /*TieBreakRetries=*/0);
      if (R.Success && R.Sched.Used) {
        Rescued = &C;
        Report = std::move(R);
      }
    }
  }
  ASSERT_NE(Rescued, nullptr)
      << "no race campaign needed schedule search in the scanned set";
  ASSERT_TRUE(Report.Sched.Used);
  EXPECT_GT(Report.Sched.Attempts, 0u);

  // The witness replays the failure: explicit chunk order when Phase A
  // found it, scheduler seed either way.
  BugSpec Spec = gen::toBugSpec(*Rescued);
  std::unique_ptr<Module> M = compileBug(Spec);
  VmConfig VC;
  VC.ChunkSize = Spec.VmChunkSize;
  VC.ScheduleSeed = Report.Sched.Seed;
  if (Report.Sched.ExplicitOrder) {
    ASSERT_FALSE(Report.Sched.Order.empty());
    VC.ExplicitSchedule = &Report.Sched.Order;
  }
  Interpreter Replay(*M, VC);
  RunResult RR = Replay.run(Report.TestCase);
  ASSERT_EQ(RR.Status, ExitStatus::Failure);
  EXPECT_TRUE(RR.Failure.sameFailure(Report.Failure));

  // The witness round-trips through the fleet state file: a resumed
  // fleet can still replay the reproduction.
  Campaign C;
  C.BugId = Rescued->Id;
  C.CampaignSeed = 1;
  C.Completed = true;
  C.Report = Report;
  std::string Path = tempPath("er_gen_sched_witness.txt");
  std::string Error;
  ASSERT_TRUE(saveFleetState(Path, 1, {&C}, &Error)) << Error;
  uint64_t RootSeed = 0;
  std::vector<Campaign> Loaded;
  ASSERT_TRUE(loadFleetState(Path, RootSeed, Loaded, &Error)) << Error;
  ASSERT_EQ(Loaded.size(), 1u);
  const SchedWitness &W = Loaded[0].Report.Sched;
  EXPECT_TRUE(W.Used);
  EXPECT_EQ(W.ExplicitOrder, Report.Sched.ExplicitOrder);
  EXPECT_EQ(W.Attempts, Report.Sched.Attempts);
  EXPECT_EQ(W.Seed, Report.Sched.Seed);
  ASSERT_EQ(W.Order.size(), Report.Sched.Order.size());
  for (size_t I = 0; I < W.Order.size(); ++I) {
    EXPECT_EQ(W.Order[I].Tid, Report.Sched.Order[I].Tid);
    EXPECT_EQ(W.Order[I].Instrs, Report.Sched.Order[I].Instrs);
  }
}

TEST(GenTelemetry, NewMetricsSurviveThePromcheckGate) {
  // The gen.* and er.schedsearch.* families must render as valid
  // Prometheus text exposition (the same validator `er_cli promcheck`
  // gates scrapes through) and must not collide with existing names —
  // a collision hands back a detached, never-exported instrument.
  gen::GenConfig GC;
  GC.Seed = 2;
  GC.Count = 3;
  std::vector<gen::GeneratedCampaign> Corpus = gen::generateCorpus(GC);
  std::string Dir = tempPath("er_gen_prom_corpus");
  ASSERT_EQ(gen::writeCorpus(Dir, Corpus), "");
  std::string Err;
  ASSERT_FALSE(gen::loadCorpus(Dir, Err).empty()) << Err;

  auto &Reg = obs::MetricsRegistry::global();
  uint64_t CollisionsBefore = Reg.rejectedNameCollisions();
  Reg.counter("er.schedsearch.searches");
  Reg.counter("er.schedsearch.rescues");
  Reg.counter("er.schedsearch.runs");
  Reg.histogram("er.schedsearch.attempts");
  EXPECT_EQ(Reg.rejectedNameCollisions(), CollisionsBefore);

  std::string Text = obs::metricsToPrometheus(Reg.snapshot());
  EXPECT_TRUE(obs::promValidateExposition(Text, &Err)) << Err;
  for (const char *Family :
       {"gen_campaigns_total", "gen_corpus_written_total",
        "gen_corpus_loaded_total", "gen_source_bytes"})
    EXPECT_NE(Text.find(Family), std::string::npos) << Family;
}

TEST(SchedSearch, DirectSearchReproducesScheduleDependentFailure) {
  // Unit-level check of searchSchedules, driver aside: a deadlock fires
  // under scheduler seed A but not seed B for the same input. Given A's
  // decoded trace and B as the fallback seed (the "recorded replay missed"
  // situation), the search must find a witness that replays the deadlock.
  gen::GenConfig GC;
  GC.Seed = 11;
  GC.Count = 4;
  GC.ClassMask = 1u << static_cast<unsigned>(gen::BugClass::Deadlock);
  gen::GeneratedCampaign C = gen::generateCorpus(GC)[0];
  BugSpec Spec = gen::toBugSpec(C);
  std::unique_ptr<Module> M = compileBug(Spec);

  VmConfig BaseVm;
  BaseVm.ChunkSize = Spec.VmChunkSize;
  TraceConfig TC;

  // Find (input, seedA, seedB): fails under A, survives under B.
  Rng R(2026);
  ProgramInput In;
  FailureRecord Target;
  TraceRecorder Rec(TC);
  uint64_t SeedB = 0;
  bool Staged = false;
  for (int Tries = 0; Tries < 4000 && !Staged; ++Tries) {
    ProgramInput Candidate = Spec.ProductionInput(R);
    uint64_t SeedA = R.next();
    VmConfig VC = BaseVm;
    VC.ScheduleSeed = SeedA;
    TraceRecorder RunRec(TC);
    Interpreter VM(*M, VC);
    RunResult RR = VM.run(Candidate, &RunRec);
    if (RR.Status != ExitStatus::Failure)
      continue;
    for (int SB = 0; SB < 64 && !Staged; ++SB) {
      uint64_t S = R.next();
      VmConfig VB = BaseVm;
      VB.ScheduleSeed = S;
      Interpreter VM2(*M, VB);
      if (VM2.run(Candidate).Status != ExitStatus::Failure) {
        In = Candidate;
        Target = RR.Failure;
        Rec = std::move(RunRec);
        SeedB = S;
        Staged = true;
      }
    }
  }
  ASSERT_TRUE(Staged) << "no schedule-dependent failing input found";

  DecodedTrace Decoded = Rec.decode();
  ScheduleSearchConfig SSC;
  ScheduleSearchResult SSR =
      searchSchedules(*M, BaseVm, In, Decoded, Target, SSC, SeedB);
  ASSERT_TRUE(SSR.Found);
  EXPECT_GT(SSR.Attempts, 0u);

  VmConfig VC = BaseVm;
  VC.ScheduleSeed = SSR.Seed;
  if (SSR.ExplicitOrder)
    VC.ExplicitSchedule = &SSR.Order;
  Interpreter Replay(*M, VC);
  RunResult RR = Replay.run(In);
  ASSERT_EQ(RR.Status, ExitStatus::Failure);
  EXPECT_TRUE(RR.Failure.sameFailure(Target));
}

} // namespace
