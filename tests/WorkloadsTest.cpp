//===- WorkloadsTest.cpp - Evaluation workload sanity and integration ----------===//
//
// Parameterized sanity checks over all 13 Table-1 bugs: each program
// compiles and verifies, its production distribution reaches a stable
// failure, its performance workload never fails, and (integration, for the
// quick bugs) the full ER loop produces a validated test case.
//
//===----------------------------------------------------------------------===//

#include "er/Driver.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace er;

namespace {

class WorkloadSanity : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST_P(WorkloadSanity, CompilesAndVerifies) {
  const BugSpec &Spec = *findBug(GetParam());
  auto M = compileBug(Spec);
  std::string Err;
  EXPECT_TRUE(verifyModule(*M, &Err)) << Err;
  EXPECT_GT(sourceLineCount(Spec), 40u) << "workloads are real programs";
}

TEST_P(WorkloadSanity, ProductionDistributionReachesAFailure) {
  const BugSpec &Spec = *findBug(GetParam());
  auto M = compileBug(Spec);
  Rng R(424242);
  VmConfig VC;
  VC.ChunkSize = Spec.VmChunkSize;
  unsigned Failures = 0;
  for (unsigned Run = 0; Run < 2000 && Failures < 3; ++Run) {
    ProgramInput In = Spec.ProductionInput(R);
    VC.ScheduleSeed = R.next();
    Interpreter VM(*M, VC);
    RunResult RR = VM.run(In);
    ASSERT_NE(RR.Status, ExitStatus::FuelExhausted);
    if (RR.Status == ExitStatus::Failure)
      ++Failures;
  }
  EXPECT_GE(Failures, 3u) << "the bug must be reachable in production";
}

TEST_P(WorkloadSanity, FailureIsDeterministicPerInputAndSchedule) {
  const BugSpec &Spec = *findBug(GetParam());
  auto M = compileBug(Spec);
  Rng R(7);
  VmConfig VC;
  VC.ChunkSize = Spec.VmChunkSize;
  for (unsigned Run = 0; Run < 2000; ++Run) {
    ProgramInput In = Spec.ProductionInput(R);
    VC.ScheduleSeed = R.next();
    Interpreter VM1(*M, VC);
    RunResult R1 = VM1.run(In);
    if (R1.Status != ExitStatus::Failure)
      continue;
    Interpreter VM2(*M, VC);
    RunResult R2 = VM2.run(In);
    ASSERT_EQ(R2.Status, ExitStatus::Failure);
    EXPECT_TRUE(R2.Failure.sameFailure(R1.Failure));
    return;
  }
  FAIL() << "no failing run found";
}

TEST_P(WorkloadSanity, PerformanceWorkloadPasses) {
  const BugSpec &Spec = *findBug(GetParam());
  auto M = compileBug(Spec);
  Rng R(5);
  VmConfig VC;
  VC.ChunkSize = Spec.VmChunkSize;
  for (int Run = 0; Run < 3; ++Run) {
    ProgramInput In = Spec.PerfInput(R);
    VC.ScheduleSeed = R.next();
    Interpreter VM(*M, VC);
    RunResult RR = VM.run(In);
    EXPECT_EQ(RR.Status, ExitStatus::Ok)
        << "perf workload must be benign: " << RR.Failure.describe();
    EXPECT_GT(RR.InstrCount, 10'000u) << "perf workload must be substantial";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBugs, WorkloadSanity,
    ::testing::Values("PHP-2012-2386", "PHP-74194", "SQLite-7be932d",
                      "SQLite-787fa71", "SQLite-4e8e485", "Nasm-2004-1287",
                      "Objdump-2018-6323", "Matrixssl-2014-1569",
                      "Memcached-2019-11596", "Libpng-2004-0597",
                      "Bash-108885", "Python-2018-1000030", "Pbzip2"),
    [](const ::testing::TestParamInfo<const char *> &Info) {
      std::string Name = Info.param;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

//===----------------------------------------------------------------------===//
// Full-loop integration on a representative subset (kept quick)
//===----------------------------------------------------------------------===//

namespace {

void runFullLoop(const char *Id) {
  const BugSpec &Spec = *findBug(Id);
  auto M = compileBug(Spec);
  DriverConfig DC;
  DC.Solver.WorkBudget = Spec.SolverWorkBudget;
  DC.Vm.ChunkSize = Spec.VmChunkSize;
  DC.Seed = 20260706;
  DC.MaxIterations = 16;
  ReconstructionDriver Driver(*M, DC);
  ReconstructionReport Report =
      Driver.reconstruct([&](Rng &R) { return Spec.ProductionInput(R); });
  ASSERT_TRUE(Report.Success) << Report.FailureDetail;

  VmConfig VC;
  VC.ChunkSize = Spec.VmChunkSize;
  VC.ScheduleSeed = Report.ReplayScheduleSeed;
  Interpreter Replay(*M, VC);
  RunResult RR = Replay.run(Report.TestCase);
  ASSERT_EQ(RR.Status, ExitStatus::Failure);
  EXPECT_TRUE(RR.Failure.sameFailure(Report.Failure));
}

} // namespace

TEST(WorkloadIntegration, Php20122386Reconstructs) {
  runFullLoop("PHP-2012-2386");
}
TEST(WorkloadIntegration, Php74194Reconstructs) { runFullLoop("PHP-74194"); }
TEST(WorkloadIntegration, Sqlite787fa71Reconstructs) {
  runFullLoop("SQLite-787fa71");
}
TEST(WorkloadIntegration, Sqlite4e8e485Reconstructs) {
  runFullLoop("SQLite-4e8e485");
}
TEST(WorkloadIntegration, NasmReconstructs) { runFullLoop("Nasm-2004-1287"); }
TEST(WorkloadIntegration, MatrixsslReconstructs) {
  runFullLoop("Matrixssl-2014-1569");
}
TEST(WorkloadIntegration, BashReconstructs) { runFullLoop("Bash-108885"); }
TEST(WorkloadIntegration, MemcachedReconstructs) {
  runFullLoop("Memcached-2019-11596");
}
TEST(WorkloadIntegration, LibpngReconstructs) {
  runFullLoop("Libpng-2004-0597");
}
TEST(WorkloadIntegration, ObjdumpReconstructs) {
  runFullLoop("Objdump-2018-6323");
}
TEST(WorkloadIntegration, PythonReconstructs) {
  runFullLoop("Python-2018-1000030");
}
TEST(WorkloadIntegration, Pbzip2Reconstructs) { runFullLoop("Pbzip2"); }
// SQLite-7be932d's reconstruction takes ~40s of solver time; it runs in
// bench_table1_bugs rather than the unit suite.
