//===- IngestFuzz.cpp - Property/fuzz tests for the report wire format -----===//
//
// Two properties of ReportCodec (docs/INGEST.md), checked with seeded
// randomness so every run explores the same cases:
//
//  1. Round trip: any batch of reports — arbitrary bug ids, messages with
//     embedded NULs and newlines, extreme ids/sequences — encodes, decodes
//     to equal reports, and re-encodes to byte-identical wire bytes.
//  2. Rejection: flipping any single byte of a valid spool file (three
//     masks per position: low bit, high bit, all bits) makes the
//     whole-file decode fail with a typed DecodeStatus — never a crash,
//     never a silently different batch.
//
// Together these are the collector's safety argument: what a machine
// publishes is exactly what the scheduler counts, and anything a torn
// write or bit rot produces is quarantined, not half-ingested.
//
//===----------------------------------------------------------------------===//

#include "ingest/ReportCodec.h"
#include "support/Rng.h"

#include "fleet/FleetScheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace er;

namespace {

constexpr uint64_t FuzzSeed = 20260807;

/// A report drawn uniformly from the codec's whole domain, including the
/// hostile corners: empty strings, embedded '\0' and '\n', maximal ids.
FleetFailureReport randomReport(Rng &R) {
  FleetFailureReport Out;
  auto RandomString = [&](size_t MaxLen, bool AnyByte) {
    std::string S;
    size_t Len = R.nextBounded(MaxLen + 1);
    for (size_t I = 0; I < Len; ++I)
      S.push_back(AnyByte
                      ? static_cast<char>(R.nextBounded(256))
                      : static_cast<char>('a' + R.nextBounded(26)));
    return S;
  };
  Out.BugId = RandomString(24, /*AnyByte=*/false);
  Out.MachineId = R.nextBool(0.2) ? ~0ULL : R.next();
  Out.Sequence = R.nextBool(0.2) ? 0 : R.next();
  Out.Failure.Kind = static_cast<FailureKind>(
      R.nextBounded(static_cast<uint64_t>(FailureKind::InputUnderrun) + 1));
  Out.Failure.InstrGlobalId =
      R.nextBool(0.2) ? ~0u : static_cast<unsigned>(R.next());
  Out.Failure.Tid = static_cast<uint32_t>(R.next());
  size_t Depth = R.nextBounded(9);
  for (size_t I = 0; I < Depth; ++I)
    Out.Failure.CallStack.push_back(static_cast<unsigned>(R.next()));
  Out.Failure.Message = RandomString(40, /*AnyByte=*/true);
  return Out;
}

std::vector<uint8_t> encodeBatch(const std::vector<FleetFailureReport> &In) {
  std::vector<uint8_t> Wire;
  encodeSpoolHeader(Wire);
  for (const FleetFailureReport &R : In)
    encodeReport(R, Wire);
  return Wire;
}

/// Decodes a whole spool file. Returns the first non-Ok status, or Ok with
/// every record appended to \p Out.
DecodeStatus decodeBatch(const std::vector<uint8_t> &Wire,
                         std::vector<FleetFailureReport> &Out) {
  size_t Offset = 0;
  uint32_t Version = 0;
  DecodeStatus S =
      decodeSpoolHeader(Wire.data(), Wire.size(), Offset, Version);
  if (S != DecodeStatus::Ok)
    return S;
  while (Offset < Wire.size()) {
    FleetFailureReport R;
    S = decodeReport(Wire.data(), Wire.size(), Offset, R);
    if (S != DecodeStatus::Ok)
      return S;
    Out.push_back(std::move(R));
  }
  return DecodeStatus::Ok;
}

void expectReportsEqual(const FleetFailureReport &A,
                        const FleetFailureReport &B) {
  EXPECT_EQ(A.BugId, B.BugId);
  EXPECT_EQ(A.MachineId, B.MachineId);
  EXPECT_EQ(A.Sequence, B.Sequence);
  EXPECT_EQ(A.Failure.Kind, B.Failure.Kind);
  EXPECT_EQ(A.Failure.InstrGlobalId, B.Failure.InstrGlobalId);
  EXPECT_EQ(A.Failure.CallStack, B.Failure.CallStack);
  EXPECT_EQ(A.Failure.Tid, B.Failure.Tid);
  EXPECT_EQ(A.Failure.Message, B.Failure.Message);
}

TEST(IngestFuzz, RandomBatchesRoundTripByteIdentically) {
  Rng R(FuzzSeed);
  for (unsigned Trial = 0; Trial < 64; ++Trial) {
    std::vector<FleetFailureReport> In;
    size_t N = 1 + R.nextBounded(8);
    for (size_t I = 0; I < N; ++I)
      In.push_back(randomReport(R));

    std::vector<uint8_t> Wire = encodeBatch(In);
    std::vector<FleetFailureReport> Decoded;
    ASSERT_EQ(decodeBatch(Wire, Decoded), DecodeStatus::Ok)
        << "trial " << Trial;
    ASSERT_EQ(Decoded.size(), In.size());
    for (size_t I = 0; I < In.size(); ++I)
      expectReportsEqual(In[I], Decoded[I]);

    // Encoding is a function of the report alone: re-encoding the decoded
    // batch reproduces the wire bytes exactly.
    EXPECT_EQ(encodeBatch(Decoded), Wire) << "trial " << Trial;
  }
}

TEST(IngestFuzz, EverySingleByteMutationIsRejectedWithTypedError) {
  // One deterministic batch; the mutation sweep covers every byte of the
  // header, both records' length/CRC prefixes, and all payload bytes.
  Rng R(FuzzSeed + 1);
  std::vector<FleetFailureReport> In = {randomReport(R), randomReport(R)};
  std::vector<uint8_t> Wire = encodeBatch(In);

  // Offsets at which a prefix of the file is itself a complete, valid
  // spool file (header boundary and each record boundary).
  std::vector<size_t> ValidPrefixes;
  {
    std::vector<uint8_t> Partial;
    encodeSpoolHeader(Partial);
    ValidPrefixes.push_back(Partial.size());
    for (const FleetFailureReport &Rep : In) {
      encodeReport(Rep, Partial);
      ValidPrefixes.push_back(Partial.size());
    }
  }

  for (size_t Pos = 0; Pos < Wire.size(); ++Pos) {
    for (uint8_t Mask : {uint8_t(0x01), uint8_t(0x80), uint8_t(0xFF)}) {
      std::vector<uint8_t> Bad = Wire;
      Bad[Pos] ^= Mask;
      std::vector<FleetFailureReport> Out;
      DecodeStatus S = decodeBatch(Bad, Out);
      EXPECT_NE(S, DecodeStatus::Ok)
          << "mutation at byte " << Pos << " mask 0x" << std::hex
          << unsigned(Mask) << " was silently accepted";
      // The status is one of the typed rejections, and naming it does not
      // trip the unknown-value fatal path.
      EXPECT_STRNE(decodeStatusName(S), "?");
    }
  }

  // Truncation at every position is a typed rejection — except at a
  // record boundary, where the prefix is a legitimately shorter file (the
  // spool writer's own unit of atomicity).
  for (size_t Cut = 0; Cut < Wire.size(); ++Cut) {
    std::vector<uint8_t> Short(Wire.begin(), Wire.begin() + Cut);
    std::vector<FleetFailureReport> Out;
    DecodeStatus S = decodeBatch(Short, Out);
    bool AtBoundary = std::find(ValidPrefixes.begin(), ValidPrefixes.end(),
                                Cut) != ValidPrefixes.end();
    if (AtBoundary)
      EXPECT_EQ(S, DecodeStatus::Ok) << "boundary cut at " << Cut;
    else
      EXPECT_EQ(S, DecodeStatus::Truncated) << "cut at " << Cut;
  }
}

} // namespace
