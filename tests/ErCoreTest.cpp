//===- ErCoreTest.cpp - Constraint graph, selection, driver tests -----------===//
//
// Tests ER's core: constraint-graph construction, key data value selection
// (including the Fig. 3/Fig. 4 walkthrough), ptwrite instrumentation, and
// the end-to-end iterative reconstruction driver.
//
//===----------------------------------------------------------------------===//

#include "er/ConstraintGraph.h"
#include "er/Driver.h"
#include "er/Instrumenter.h"
#include "er/Selection.h"
#include "lang/Codegen.h"
#include "support/Rng.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace er;

namespace {

/// The paper's running example (Fig. 3) with inputs as program arguments.
const char *Fig3Source = R"(
global V: u32[256];

fn foo(a: u32, b: u32, c: u32, d: u32) {
  var x: u32 = a + b;
  if ((x < 256 && c < 256) && d < 256) {
    V[x] = 1;
    if (V[c] == 0) {
      V[c] = 512;
    }
    V[V[x]] = x;
    if (c < d) {
      if (V[V[d]] == x) {
        abort("fig3 failure");
      }
    }
  }
}

fn main() -> i64 {
  foo(input_arg(0) as u32, input_arg(1) as u32,
      input_arg(2) as u32, input_arg(3) as u32);
  return 0;
}
)";

std::unique_ptr<Module> compile(const std::string &Src) {
  CompileResult R = compileMiniLang(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.M);
}

/// Produces a stalled snapshot for the Fig. 3 program under a small budget.
SymexResult stallFig3(Module &M, ExprContext &Ctx, uint64_t Budget) {
  TraceConfig TC;
  TraceRecorder Rec(TC);
  Interpreter VM(M, VmConfig());
  ProgramInput In;
  In.Args = {0, 2, 0, 2};
  RunResult RR = VM.run(In, &Rec);
  EXPECT_EQ(RR.Status, ExitStatus::Failure);

  SolverConfig SC;
  SC.WorkBudget = Budget;
  static ConstraintSolver *Leaked = nullptr; // Keep the solver alive.
  Leaked = new ConstraintSolver(Ctx, SC);
  ShepherdedExecutor SE(M, Ctx, *Leaked, SymexConfig());
  return SE.run(Rec.decode(), RR.Failure);
}

} // namespace

//===----------------------------------------------------------------------===//
// Constraint graph
//===----------------------------------------------------------------------===//

TEST(ConstraintGraph, CapturesChainsAndSizes) {
  auto M = compile(Fig3Source);
  ExprContext Ctx;
  SymexResult SR = stallFig3(*M, Ctx, 2000);
  ASSERT_EQ(SR.Status, SymexStatus::Stalled) << SR.Detail;

  ConstraintGraph G(SR.Snapshot);
  EXPECT_GT(G.numNodes(), 10u);
  EXPECT_GT(G.numEdges(), G.numNodes() / 2);
  ASSERT_NE(G.longestChain(), nullptr);
  EXPECT_EQ(G.longestChain()->Name, "V");
  // V is 256 x u32 = 1024 bytes, the largest symbolic object.
  ASSERT_NE(G.largestObjectChain(), nullptr);
  EXPECT_EQ(G.largestObjectChain()->byteSize(), 1024u);
}

//===----------------------------------------------------------------------===//
// Key data value selection on the running example
//===----------------------------------------------------------------------===//

TEST(Selection, BottleneckSetMatchesPaperNarrative) {
  auto M = compile(Fig3Source);
  ExprContext Ctx;
  SymexResult SR = stallFig3(*M, Ctx, 2000);
  ASSERT_EQ(SR.Status, SymexStatus::Stalled) << SR.Detail;

  ConstraintGraph G(SR.Snapshot);
  KeyValueSelector Sel(G);
  // The bottleneck set contains the symbolic indices of the write chain
  // over V (x and c in the paper's notation).
  EXPECT_GE(Sel.bottleneckSet().size(), 2u);
}

TEST(Selection, RecordingSetCheaperThanBottleneck) {
  auto M = compile(Fig3Source);
  ExprContext Ctx;
  SymexResult SR = stallFig3(*M, Ctx, 2000);
  ASSERT_EQ(SR.Status, SymexStatus::Stalled) << SR.Detail;

  ConstraintGraph G(SR.Snapshot);
  KeyValueSelector Sel(G);
  RecordingPlan Plan = Sel.computeRecordingSet();
  ASSERT_FALSE(Plan.Values.empty());

  uint64_t BottleneckCost = 0;
  for (ExprRef E : Sel.bottleneckSet()) {
    uint64_t C = Sel.costOf(E);
    if (C != UINT64_MAX)
      BottleneckCost += C;
  }
  EXPECT_LE(Plan.totalCost(), BottleneckCost)
      << "minimization must never increase the recording cost";
  // Every selected value has an instrumentation site.
  for (const auto &V : Plan.Values) {
    EXPECT_NE(V.E, nullptr);
    EXPECT_GT(V.WidthBytes, 0u);
  }
}

TEST(Selection, InferableElementsDropped) {
  // Build the paper's exact scenario at the expression level: bottleneck
  // {x, c, V[x]} where V[x] reads a chain written at x and c. With x and c
  // recorded, V[x] is inferable and must be dropped.
  ExprContext Ctx;
  ExprRef A = Ctx.makeVar("a", 32);
  ExprRef B = Ctx.makeVar("b", 32);
  ExprRef C = Ctx.makeVar("c", 32);
  ExprRef X = Ctx.add(A, B);
  ExprRef V0 = Ctx.constArray(32, 256, 0);
  ExprRef V1 = Ctx.write(V0, X, Ctx.constant(1, 32));
  ExprRef V2 = Ctx.write(V1, C, Ctx.constant(512, 32));
  ExprRef ReadVx = Ctx.read(V2, X);

  SymexSnapshot Snap;
  Snap.PathConstraint = {Ctx.ult(X, Ctx.constant(256, 32)),
                         Ctx.ult(C, Ctx.constant(256, 32))};
  Snap.ExecCounts.assign(10, 1);
  // Origins: x defined at instr 1, c at 2, V[x] at 3; a, b at 4 and 5.
  Snap.Origins = {{X, 1}, {C, 2}, {ReadVx, 3}, {A, 4}, {B, 5}};
  ObjectChain Chain;
  Chain.ObjId = 0;
  Chain.Name = "V";
  Chain.ElemWidthBits = 32;
  Chain.NumElems = 256;
  Chain.Writes = {{X, Ctx.constant(1, 32), 10},
                  {C, Ctx.constant(512, 32), 11}};
  Snap.Chains.push_back(Chain);
  Snap.CulpritExpr = ReadVx;

  ConstraintGraph G(Snap);
  KeyValueSelector Sel(G);

  // Bottleneck = {x, c, V[x]} as in Fig. 4.
  EXPECT_EQ(Sel.bottleneckSet().size(), 3u);

  RecordingPlan Plan = Sel.computeRecordingSet();
  // Recording set = {x, c}: V[x] is inferable once x and c are known
  // (Section 3.3.2), and decomposing x into {a, b} costs 8 > 4.
  ASSERT_EQ(Plan.Values.size(), 2u);
  std::vector<ExprRef> Got{Plan.Values[0].E, Plan.Values[1].E};
  EXPECT_TRUE((Got[0] == X && Got[1] == C) || (Got[0] == C && Got[1] == X));
  EXPECT_EQ(Plan.totalCost(), 8u); // 4 bytes for x + 4 bytes for c.
}

TEST(Selection, DecomposesWhenCheaper) {
  // y is a 64-bit value derived from one 8-bit input executed once;
  // recording the input byte (1 byte) beats recording y (8 bytes).
  ExprContext Ctx;
  ExprRef B = Ctx.makeVar("b", 8);
  ExprRef Y = Ctx.mul(Ctx.zext(B, 64), Ctx.constant(3, 64));

  SymexSnapshot Snap;
  Snap.ExecCounts.assign(4, 1);
  Snap.Origins = {{Y, 1}, {B, 2}, {Ctx.zext(B, 64), 3}};
  Snap.CulpritExpr = Y;

  ConstraintGraph G(Snap);
  KeyValueSelector Sel(G);
  RecordingPlan Plan = Sel.computeRecordingSet();
  ASSERT_EQ(Plan.Values.size(), 1u);
  EXPECT_EQ(Plan.Values[0].E, B) << "should record the cheap input byte";
  EXPECT_EQ(Plan.totalCost(), 1u);
}

TEST(Selection, HighCountDefSitesAvoided) {
  // z is defined in a loop (1000 executions); its single-shot inputs are
  // cheaper even though wider.
  ExprContext Ctx;
  ExprRef A = Ctx.makeVar("a", 64);
  ExprRef Z = Ctx.add(A, Ctx.constant(1, 64));

  SymexSnapshot Snap;
  Snap.ExecCounts.assign(4, 1);
  Snap.ExecCounts[1] = 1000; // z's def site is hot.
  Snap.Origins = {{Z, 1}, {A, 2}};
  Snap.CulpritExpr = Z;

  ConstraintGraph G(Snap);
  KeyValueSelector Sel(G);
  RecordingPlan Plan = Sel.computeRecordingSet();
  ASSERT_EQ(Plan.Values.size(), 1u);
  EXPECT_EQ(Plan.Values[0].E, A);
}

//===----------------------------------------------------------------------===//
// Instrumentation
//===----------------------------------------------------------------------===//

TEST(Instrumenter, InsertsAndIsIdempotent) {
  auto M = compile(Fig3Source);
  ExprContext Ctx;
  SymexResult SR = stallFig3(*M, Ctx, 2000);
  ASSERT_EQ(SR.Status, SymexStatus::Stalled) << SR.Detail;

  ConstraintGraph G(SR.Snapshot);
  KeyValueSelector Sel(G);
  RecordingPlan Plan = Sel.computeRecordingSet();
  ASSERT_FALSE(Plan.Values.empty());

  unsigned Before = countInstrumentation(*M);
  unsigned Inserted = instrumentModule(*M, Plan);
  EXPECT_GT(Inserted, 0u);
  EXPECT_EQ(countInstrumentation(*M), Before + Inserted);
  // Re-applying the same plan adds nothing.
  EXPECT_EQ(instrumentModule(*M, Plan), 0u);

  std::string Err;
  EXPECT_TRUE(verifyModule(*M, &Err)) << Err;

  // The instrumented module still runs and still fails identically.
  Interpreter VM(*M, VmConfig());
  ProgramInput In;
  In.Args = {0, 2, 0, 2};
  RunResult RR = VM.run(In);
  ASSERT_EQ(RR.Status, ExitStatus::Failure);
  EXPECT_EQ(RR.Failure.Kind, FailureKind::Abort);
}

TEST(Instrumenter, GlobalIdsAreSticky) {
  auto M = compile(Fig3Source);
  // Capture ids before instrumentation.
  Interpreter VM(*M, VmConfig());
  ProgramInput In;
  In.Args = {0, 2, 0, 2};
  RunResult Before = VM.run(In);
  ASSERT_EQ(Before.Status, ExitStatus::Failure);

  ExprContext Ctx;
  SymexResult SR = stallFig3(*M, Ctx, 2000);
  ASSERT_EQ(SR.Status, SymexStatus::Stalled);
  ConstraintGraph G(SR.Snapshot);
  KeyValueSelector Sel(G);
  instrumentModule(*M, Sel.computeRecordingSet());

  Interpreter VM2(*M, VmConfig());
  RunResult After = VM2.run(In);
  ASSERT_EQ(After.Status, ExitStatus::Failure);
  EXPECT_TRUE(After.Failure.sameFailure(Before.Failure))
      << "failure identity must survive instrumentation";
}

//===----------------------------------------------------------------------===//
// End-to-end iterative reconstruction (the Fig. 3 story)
//===----------------------------------------------------------------------===//

TEST(Driver, Fig3IterativeReconstruction) {
  auto M = compile(Fig3Source);
  DriverConfig DC;
  DC.Solver.WorkBudget = 2000; // Small budget: forces the iterative path.
  DC.Seed = 42;

  ReconstructionDriver Driver(*M, DC);
  // Production inputs: mostly benign, sometimes the failing pattern.
  auto Gen = [](Rng &R) {
    ProgramInput In;
    if (R.nextBool(0.3)) {
      In.Args = {0, 2, 0, 2}; // The paper's failing call foo(0,2,0,2).
    } else {
      In.Args = {R.nextBounded(300), R.nextBounded(300), R.nextBounded(300),
                 R.nextBounded(300)};
    }
    return In;
  };
  ReconstructionReport Report = Driver.reconstruct(Gen);
  ASSERT_TRUE(Report.Success) << Report.FailureDetail;
  EXPECT_GE(Report.Occurrences, 2u)
      << "a tiny budget must require data recording iterations";
  EXPECT_LE(Report.Occurrences, 6u);

  // The test case reproduces the failure on a fresh VM.
  VmConfig VC;
  VC.ScheduleSeed = Report.ReplayScheduleSeed;
  Interpreter Replay(*M, VC);
  RunResult RR = Replay.run(Report.TestCase);
  ASSERT_EQ(RR.Status, ExitStatus::Failure);
  EXPECT_TRUE(RR.Failure.sameFailure(Report.Failure));
}

TEST(Driver, SingleOccurrenceWhenBudgetSuffices) {
  auto M = compile(Fig3Source);
  DriverConfig DC;
  DC.Solver.WorkBudget = 4'000'000; // Generous: no stalls expected.
  DC.Seed = 43;
  ReconstructionDriver Driver(*M, DC);
  auto Gen = [](Rng &R) {
    ProgramInput In;
    In.Args = {0, 2, 0, 2};
    (void)R;
    return In;
  };
  ReconstructionReport Report = Driver.reconstruct(Gen);
  ASSERT_TRUE(Report.Success) << Report.FailureDetail;
  EXPECT_EQ(Report.Occurrences, 1u);
}

TEST(Driver, RandomRecordingFailsWhereSelectionSucceeds) {
  // The Section 5.2 ablation: random recording of equal cost does not
  // relieve the stall.
  auto MakeModule = [] { return compile(Fig3Source); };
  auto Gen = [](Rng &R) {
    ProgramInput In;
    In.Args = {0, 2, 0, 2};
    (void)R;
    return In;
  };

  auto MSel = MakeModule();
  DriverConfig DC;
  DC.Solver.WorkBudget = 2000;
  DC.Seed = 44;
  DC.MaxIterations = 6;
  ReconstructionDriver DSel(*MSel, DC);
  ReconstructionReport RSel = DSel.reconstruct(Gen);
  EXPECT_TRUE(RSel.Success) << RSel.FailureDetail;

  auto MRnd = MakeModule();
  DC.UseRandomSelection = true;
  ReconstructionDriver DRnd(*MRnd, DC);
  ReconstructionReport RRnd = DRnd.reconstruct(Gen);
  if (RRnd.Success) {
    // If random recording got lucky, it must at least need more
    // occurrences than guided selection.
    EXPECT_GT(RRnd.Occurrences, RSel.Occurrences);
  }
}

TEST(Driver, MultithreadedUafReconstruction) {
  // A pbzip2-style use-after-free: the consumer uses a block after the
  // producer freed it, under a specific interleaving.
  auto M = compile(R"(
    global slot: i64[1];
    global done: i64[1];
    fn consumer(p: *i64) {
      var v: i64 = p[0];
      var sink: i64 = 0;
      for (var i: i64 = 0; i < 40; i = i + 1) { sink = sink + i; }
      slot[0] = v + sink;
      done[0] = 1;
    }
    fn main() -> i64 {
      var buf: *i64 = new i64[4];
      buf[0] = input_arg(0);
      var t: i64 = spawn(consumer, buf);
      var trigger: i64 = input_arg(1);
      if (trigger == 9) {
        // Frees while the consumer may still be running.
        delete buf;
      }
      join(t);
      return slot[0];
    }
  )");
  DriverConfig DC;
  DC.Seed = 7;
  DC.Vm.ChunkSize = 16; // Fine-grained interleaving.
  ReconstructionDriver Driver(*M, DC);
  auto Gen = [](Rng &R) {
    ProgramInput In;
    In.Args = {R.nextBounded(100), R.nextBool(0.5) ? 9u : R.nextBounded(8)};
    return In;
  };
  ReconstructionReport Report = Driver.reconstruct(Gen);
  ASSERT_TRUE(Report.Success) << Report.FailureDetail;
  EXPECT_EQ(Report.Failure.Kind, FailureKind::UseAfterFree);

  VmConfig VC;
  VC.ChunkSize = 16;
  VC.ScheduleSeed = Report.ReplayScheduleSeed;
  Interpreter Replay(*M, VC);
  RunResult RR = Replay.run(Report.TestCase);
  ASSERT_EQ(RR.Status, ExitStatus::Failure);
  EXPECT_TRUE(RR.Failure.sameFailure(Report.Failure));
}

TEST(Driver, DeferredTracingCountsWarmupOccurrences) {
  // Section 3.1: tracing can stay off until the failure has recurred; the
  // warm-up occurrences still count, and reconstruction proceeds normally
  // afterwards.
  auto M = compile(Fig3Source);
  DriverConfig DC;
  DC.Seed = 42;
  DC.EnableTracingAfterOccurrences = 3;
  ReconstructionDriver Driver(*M, DC);
  auto Gen = [](Rng &R) {
    ProgramInput In;
    In.Args = {0, 2, 0, 2};
    (void)R;
    return In;
  };
  ReconstructionReport Report = Driver.reconstruct(Gen);
  ASSERT_TRUE(Report.Success) << Report.FailureDetail;
  EXPECT_GE(Report.Occurrences, 4u)
      << "3 untraced occurrences + at least 1 traced";
}

TEST(Driver, CoarseTimerTiesResolvedByTieBreakRetries) {
  // Section 3.4: with a very coarse timer, chunk timestamps collapse and
  // the cross-thread order becomes ambiguous; the driver's bounded
  // exploration of tie-break orders must still land a validated
  // reconstruction.
  auto M = compile(R"(
    global cells: i64[8];
    global out: i64[1];
    fn worker(p: *i64) {
      for (var i: i64 = 0; i < 30; i = i + 1) {
        cells[i % 8] = cells[i % 8] + p[0];
      }
    }
    fn main() -> i64 {
      var x: i64 = input_arg(0);
      var a: i64[1];
      a[0] = 2;
      var t: i64 = spawn(worker, a);
      for (var i: i64 = 0; i < 30; i = i + 1) {
        cells[i % 8] = cells[i % 8] + 1;
      }
      join(t);
      out[0] = cells[0] + cells[1];
      if (out[0] > 10) {
        assert(x != 99);
      }
      return out[0];
    }
  )");
  DriverConfig DC;
  DC.Seed = 17;
  DC.Vm.ChunkSize = 12;
  DC.Trace.TimerGranularityShift = 12; // Coarse: most timestamps tie.
  ReconstructionDriver Driver(*M, DC);
  ReconstructionReport Report = Driver.reconstruct([](Rng &R) {
    ProgramInput In;
    In.Args = {R.nextBool(0.5) ? 99u : R.nextBounded(50)};
    return In;
  });
  ASSERT_TRUE(Report.Success) << Report.FailureDetail;
  VmConfig VC;
  VC.ChunkSize = 12;
  VC.ScheduleSeed = Report.ReplayScheduleSeed;
  Interpreter Replay(*M, VC);
  RunResult RR = Replay.run(Report.TestCase);
  ASSERT_EQ(RR.Status, ExitStatus::Failure);
  EXPECT_TRUE(RR.Failure.sameFailure(Report.Failure));
}

TEST(Driver, TargetsOneFailureAmongSeveralBugs) {
  // Production programs have more than one bug; the driver locks onto the
  // first observed failure identity and ignores occurrences of the others
  // (FailureRecord::sameFailure filtering).
  auto M = compile(R"(
    global buf: u8[16];
    fn main() -> i64 {
      var k: i64 = input_arg(0);
      var v: i64 = input_arg(1);
      if (k == 1) {
        buf[v] = 1;            // Bug A: out-of-bounds for v >= 16.
      }
      if (k == 2) {
        return 100 / v;        // Bug B: division by zero.
      }
      if (k == 3) {
        assert(v != 7);        // Bug C: assertion.
      }
      return 0;
    }
  )");
  DriverConfig DC;
  DC.Seed = 31;
  ReconstructionDriver Driver(*M, DC);
  unsigned Emitted = 0;
  ReconstructionReport Report = Driver.reconstruct([&](Rng &R) {
    ProgramInput In;
    // First failing input is always bug B; later ones hit all three bugs.
    ++Emitted;
    if (Emitted == 1) {
      In.Args = {2, 0};
    } else {
      uint64_t K = 1 + R.nextBounded(3);
      In.Args = {K, K == 1 ? 20 + R.nextBounded(10)
                           : (K == 2 ? 0 : 7)};
    }
    return In;
  });
  ASSERT_TRUE(Report.Success) << Report.FailureDetail;
  EXPECT_EQ(Report.Failure.Kind, FailureKind::DivByZero)
      << "must reproduce the first observed bug, not a different one";
  Interpreter VM(*M, VmConfig());
  RunResult RR = VM.run(Report.TestCase);
  ASSERT_EQ(RR.Status, ExitStatus::Failure);
  EXPECT_TRUE(RR.Failure.sameFailure(Report.Failure));
}

TEST(Driver, TruncatedTraceReportedAsHardFailure) {
  // A ring buffer smaller than the failing trace is a deployment
  // configuration error the driver must surface, not mask.
  auto M = compile(Fig3Source);
  DriverConfig DC;
  DC.Seed = 3;
  DC.Trace.BufferBytes = 8; // Below a single chunk packet: must truncate.
  ReconstructionDriver Driver(*M, DC);
  ReconstructionReport Report = Driver.reconstruct([](Rng &R) {
    ProgramInput In;
    In.Args = {0, 2, 0, 2};
    (void)R;
    return In;
  });
  EXPECT_FALSE(Report.Success);
  EXPECT_NE(Report.FailureDetail.find("trace-truncated"), std::string::npos)
      << Report.FailureDetail;
}

TEST(Driver, IterationReportsShowRecordingGrowth) {
  // The per-iteration telemetry must reflect the instrumentation ramp-up:
  // ptwrite packets appear in the traces of later iterations.
  auto M = compile(Fig3Source);
  DriverConfig DC;
  DC.Solver.WorkBudget = 2000;
  DC.Seed = 42;
  ReconstructionDriver Driver(*M, DC);
  ReconstructionReport Report = Driver.reconstruct([](Rng &R) {
    ProgramInput In;
    In.Args = {0, 2, 0, 2};
    (void)R;
    return In;
  });
  ASSERT_TRUE(Report.Success) << Report.FailureDetail;
  ASSERT_GE(Report.Iterations.size(), 2u);
  EXPECT_EQ(Report.Iterations.front().Trace.PtwPackets, 0u)
      << "first occurrence is control flow only";
  EXPECT_GT(Report.Iterations.back().Trace.PtwPackets, 0u)
      << "later occurrences carry recorded data values";
  EXPECT_GT(Report.Iterations.back().TotalInstrumentationSites, 0u);
}
