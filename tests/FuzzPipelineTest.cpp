//===- FuzzPipelineTest.cpp - Randomized end-to-end pipeline validation --------===//
//
// Generates random MiniLang programs (arithmetic, guarded array accesses,
// branches, bounded loops over the input arguments), plants a failing
// assertion calibrated from a concrete run, and validates the whole
// pipeline: VM -> trace -> shepherded symbolic execution -> (iterative
// recording if needed) -> generated test case -> replay reproduces the
// same failure.
//
// This is the strongest invariant the system offers: for *any* program in
// the language, a reproduced test case must actually fail the same way.
//
//===----------------------------------------------------------------------===//

#include "er/Driver.h"
#include "lang/Codegen.h"
#include "support/Format.h"
#include "support/Rng.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace er;

namespace {

/// Emits a random expression over i64 variables x0..x3 and literals.
std::string randomExprSrc(Rng &R, int Depth) {
  if (Depth == 0 || R.nextBool(0.35))
    return R.nextBool(0.5) ? "x" + std::to_string(R.nextBounded(4))
                           : std::to_string(R.nextBounded(100));
  static const char *Ops[] = {"+", "-", "*", "&", "|", "^"};
  return "(" + randomExprSrc(R, Depth - 1) + " " +
         Ops[R.nextBounded(6)] + " " + randomExprSrc(R, Depth - 1) + ")";
}

/// Generates a program body: mutations of x0..x3, guarded array traffic,
/// branches and a bounded loop; returns (x0^x1)+(x2^x3) style mix.
std::string randomProgram(Rng &R) {
  std::string S;
  S += "global tab: i64[16];\n";
  S += "fn main() -> i64 {\n";
  for (int I = 0; I < 4; ++I)
    S += formatString("  var x%d: i64 = input_arg(%d);\n", I, I);

  unsigned Stmts = 3 + R.nextBounded(6);
  for (unsigned K = 0; K < Stmts; ++K) {
    switch (R.nextBounded(4)) {
    case 0: // Assignment.
      S += formatString("  x%llu = %s;\n",
                        (unsigned long long)R.nextBounded(4),
                        randomExprSrc(R, 2).c_str());
      break;
    case 1: // Guarded array write (symbolic index -> write chains).
      S += formatString("  if (x%llu >= 0) {\n"
                        "    tab[(x%llu & 15)] = x%llu;\n"
                        "  }\n",
                        (unsigned long long)R.nextBounded(4),
                        (unsigned long long)R.nextBounded(4),
                        (unsigned long long)R.nextBounded(4));
      break;
    case 2: // Branch.
      S += formatString("  if (%s > %llu) {\n    x%llu = x%llu + 1;\n  } "
                        "else {\n    x%llu = x%llu - 1;\n  }\n",
                        randomExprSrc(R, 1).c_str(),
                        (unsigned long long)R.nextBounded(200),
                        (unsigned long long)R.nextBounded(4),
                        (unsigned long long)R.nextBounded(4),
                        (unsigned long long)R.nextBounded(4),
                        (unsigned long long)R.nextBounded(4));
      break;
    default: // Bounded loop.
      S += formatString("  for (var i: i64 = 0; i < (x%llu & 31); "
                        "i = i + 1) {\n    x%llu = x%llu + tab[(i & 15)];\n"
                        "  }\n",
                        (unsigned long long)R.nextBounded(4),
                        (unsigned long long)R.nextBounded(4),
                        (unsigned long long)R.nextBounded(4));
      break;
    }
  }
  S += "  var mix: i64 = (x0 ^ x1) + (x2 ^ x3);\n";
  S += "  assert(mix != @SENTINEL@);\n";
  S += "  return mix;\n";
  S += "}\n";
  return S;
}

std::string replaceSentinel(std::string Src, int64_t V) {
  std::string Key = "@SENTINEL@";
  size_t Pos = Src.find(Key);
  EXPECT_NE(Pos, std::string::npos);
  // MiniLang literals are non-negative; negate via unary minus.
  std::string Lit = V < 0 ? "(0 - " + std::to_string(-V) + ")"
                          : std::to_string(V);
  Src.replace(Pos, Key.size(), Lit);
  return Src;
}

class FuzzPipeline : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(FuzzPipeline, GeneratedTestCasesReproduce) {
  Rng R(GetParam());

  // 1. Generate a program and calibrate a failing assertion: run it once on
  //    a concrete input and make that run's mix the forbidden value.
  std::string Template = randomProgram(R);
  ProgramInput Crash;
  for (int I = 0; I < 4; ++I)
    Crash.Args.push_back(R.nextBounded(500));

  std::string Probe = replaceSentinel(Template, /*V=*/-1);
  CompileResult PR = compileMiniLang(Probe);
  ASSERT_TRUE(PR.ok()) << PR.Error << "\n" << Probe;
  Interpreter ProbeVM(*PR.M, VmConfig());
  RunResult Base = ProbeVM.run(Crash);
  ASSERT_EQ(Base.Status, ExitStatus::Ok) << Probe;

  std::string Source =
      replaceSentinel(Template, static_cast<int64_t>(Base.RetVal));
  CompileResult CR = compileMiniLang(Source);
  ASSERT_TRUE(CR.ok()) << CR.Error;

  // The calibrated input must now fail.
  {
    Interpreter VM(*CR.M, VmConfig());
    RunResult RR = VM.run(Crash);
    ASSERT_EQ(RR.Status, ExitStatus::Failure) << Source;
    ASSERT_EQ(RR.Failure.Kind, FailureKind::Abort);
  }

  // 2. Full ER loop: production emits the crashing input occasionally.
  DriverConfig DC;
  DC.Seed = GetParam() * 31 + 7;
  DC.MaxIterations = 16;
  ReconstructionDriver Driver(*CR.M, DC);
  ReconstructionReport Report = Driver.reconstruct([&](Rng &Prod) {
    if (Prod.nextBool(0.5))
      return Crash;
    ProgramInput In;
    for (int I = 0; I < 4; ++I)
      In.Args.push_back(Prod.nextBounded(500));
    return In;
  });
  ASSERT_TRUE(Report.Success) << Report.FailureDetail << "\n" << Source;

  // 3. The generated test case must reproduce the same failure.
  VmConfig VC;
  VC.ScheduleSeed = Report.ReplayScheduleSeed;
  Interpreter Replay(*CR.M, VC);
  RunResult RR = Replay.run(Report.TestCase);
  ASSERT_EQ(RR.Status, ExitStatus::Failure) << Source;
  EXPECT_TRUE(RR.Failure.sameFailure(Report.Failure)) << Source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                           11, 12, 13, 14, 15, 16, 17, 18,
                                           19, 20));

//===----------------------------------------------------------------------===//
// Byte-stream fuzz variant: programs that parse an input stream (size
// pinning, underrun semantics, per-byte variables).
//===----------------------------------------------------------------------===//

namespace {

class FuzzBytePipeline : public ::testing::TestWithParam<uint64_t> {};

std::string randomByteProgram(Rng &R) {
  std::string S;
  S += "global acc: i64[8];\n";
  S += "fn main() -> i64 {\n";
  S += "  var n: i64 = input_size();\n";
  S += "  var sum: i64 = 0;\n";
  S += "  var i: i64 = 0;\n";
  S += "  while (i + 1 < n) {\n";
  S += "    var a: u8 = input_byte();\n";
  S += "    var b: u8 = input_byte();\n";
  switch (R.nextBounded(3)) {
  case 0:
    S += "    sum = sum + (a as i64) * 3 + (b as i64);\n";
    break;
  case 1:
    S += "    acc[(a % 8) as i64] = acc[(a % 8) as i64] + (b as i64);\n";
    S += "    sum = sum + acc[(b % 8) as i64];\n";
    break;
  default:
    S += "    if (a > b) { sum = sum + 1; } else { sum = sum - 1; }\n";
    break;
  }
  S += "    i = i + 2;\n";
  S += "  }\n";
  S += "  var mix: i64 = sum & 4095;\n";
  S += "  assert(mix != @SENTINEL@);\n";
  S += "  return mix;\n";
  S += "}\n";
  return S;
}

} // namespace

TEST_P(FuzzBytePipeline, ByteStreamTestCasesReproduce) {
  Rng R(GetParam() * 977 + 5);
  std::string Template = randomByteProgram(R);
  ProgramInput Crash;
  unsigned N = 6 + 2 * static_cast<unsigned>(R.nextBounded(12));
  for (unsigned I = 0; I < N; ++I)
    Crash.Bytes.push_back(static_cast<uint8_t>(R.nextBounded(256)));

  std::string Probe = replaceSentinel(Template, -1);
  CompileResult PR = compileMiniLang(Probe);
  ASSERT_TRUE(PR.ok()) << PR.Error;
  Interpreter ProbeVM(*PR.M, VmConfig());
  RunResult Base = ProbeVM.run(Crash);
  ASSERT_EQ(Base.Status, ExitStatus::Ok);

  std::string Source =
      replaceSentinel(Template, static_cast<int64_t>(Base.RetVal));
  CompileResult CR = compileMiniLang(Source);
  ASSERT_TRUE(CR.ok()) << CR.Error;

  DriverConfig DC;
  DC.Seed = GetParam() * 13 + 1;
  DC.MaxIterations = 16;
  ReconstructionDriver Driver(*CR.M, DC);
  ReconstructionReport Report = Driver.reconstruct([&](Rng &Prod) {
    if (Prod.nextBool(0.5))
      return Crash;
    ProgramInput In;
    unsigned Len = 2 * static_cast<unsigned>(1 + Prod.nextBounded(12));
    for (unsigned I = 0; I < Len; ++I)
      In.Bytes.push_back(static_cast<uint8_t>(Prod.nextBounded(256)));
    return In;
  });
  ASSERT_TRUE(Report.Success) << Report.FailureDetail << "\n" << Source;

  Interpreter Replay(*CR.M, VmConfig());
  RunResult RR = Replay.run(Report.TestCase);
  ASSERT_EQ(RR.Status, ExitStatus::Failure) << Source;
  EXPECT_TRUE(RR.Failure.sameFailure(Report.Failure)) << Source;
}

INSTANTIATE_TEST_SUITE_P(ByteSeeds, FuzzBytePipeline,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));
