//===- LangVmTest.cpp - MiniLang frontend and VM tests ----------------------===//
//
// Compiles MiniLang programs and executes them on the concrete VM, checking
// outputs, failure detection, threading, and trace recording/decoding.
//
//===----------------------------------------------------------------------===//

#include "lang/Codegen.h"
#include "trace/Trace.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace er;

namespace {

/// Compiles source or aborts the test.
std::unique_ptr<Module> compile(const std::string &Src) {
  CompileResult R = compileMiniLang(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.M);
}

RunResult runProgram(Module &M, ProgramInput In = {},
                     TraceRecorder *Rec = nullptr, VmConfig Cfg = VmConfig()) {
  Interpreter VM(M, Cfg);
  return VM.run(In, Rec);
}

} // namespace

//===----------------------------------------------------------------------===//
// Lexer / parser diagnostics
//===----------------------------------------------------------------------===//

TEST(Lang, LexerError) {
  CompileResult R = compileMiniLang("fn main() -> i64 { return 0; } @");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("unexpected character"), std::string::npos);
}

TEST(Lang, ParserError) {
  CompileResult R = compileMiniLang("fn main() -> i64 { return 0 }");
  EXPECT_FALSE(R.ok());
}

TEST(Lang, SemaUndeclared) {
  CompileResult R = compileMiniLang("fn main() -> i64 { return xyz; }");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("undeclared"), std::string::npos);
}

TEST(Lang, SemaTypeMismatch) {
  CompileResult R = compileMiniLang(
      "fn main() -> i64 { var a: u8 = 1; var b: i64 = 2; return a + b; }");
  EXPECT_FALSE(R.ok());
}

TEST(Lang, SemaRequiresMain) {
  CompileResult R = compileMiniLang("fn helper() -> i64 { return 0; }");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("main"), std::string::npos);
}

TEST(Lang, BreakOutsideLoopRejected) {
  CompileResult R = compileMiniLang("fn main() -> i64 { break; return 0; }");
  EXPECT_FALSE(R.ok());
}

//===----------------------------------------------------------------------===//
// Basic execution
//===----------------------------------------------------------------------===//

TEST(Vm, ArithmeticAndReturn) {
  auto M = compile("fn main() -> i64 { return (3 + 4) * 5 - 1; }");
  RunResult R = runProgram(*M);
  EXPECT_EQ(R.Status, ExitStatus::Ok);
  EXPECT_EQ(R.RetVal, 34u);
}

TEST(Vm, LocalsAndLoops) {
  auto M = compile(R"(
    fn main() -> i64 {
      var sum: i64 = 0;
      for (var i: i64 = 1; i <= 10; i = i + 1) {
        if (i % 2 == 0) { continue; }
        sum = sum + i;
      }
      return sum; // 1+3+5+7+9 = 25
    }
  )");
  EXPECT_EQ(runProgram(*M).RetVal, 25u);
}

TEST(Vm, FunctionsAndRecursion) {
  auto M = compile(R"(
    fn fib(n: i64) -> i64 {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    fn main() -> i64 { return fib(15); }
  )");
  EXPECT_EQ(runProgram(*M).RetVal, 610u);
}

TEST(Vm, GlobalsAndArrays) {
  auto M = compile(R"(
    global table: u32[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    fn main() -> i64 {
      var sum: u32 = 0;
      for (var i: i64 = 0; i < 8; i = i + 1) {
        sum = sum + table[i];
      }
      table[0] = sum;
      return table[0] as i64;
    }
  )");
  EXPECT_EQ(runProgram(*M).RetVal, 36u);
}

TEST(Vm, PointersAndHeap) {
  auto M = compile(R"(
    fn fill(p: *u8, n: i64) {
      for (var i: i64 = 0; i < n; i = i + 1) { p[i] = (i * 3) as u8; }
    }
    fn main() -> i64 {
      var buf: *u8 = new u8[16];
      fill(buf, 16);
      var v: i64 = buf[5] as i64;
      delete buf;
      return v;
    }
  )");
  EXPECT_EQ(runProgram(*M).RetVal, 15u);
}

TEST(Vm, ShortCircuitEvaluation) {
  auto M = compile(R"(
    global hits: i64[1];
    fn bump() -> bool { hits[0] = hits[0] + 1; return true; }
    fn main() -> i64 {
      var a: bool = false && bump();
      var b: bool = true || bump();
      if (a || !b) { return 99; }
      return hits[0]; // Neither bump should have run.
    }
  )");
  EXPECT_EQ(runProgram(*M).RetVal, 0u);
}

TEST(Vm, PrintOutput) {
  auto M = compile(R"(
    fn main() -> i64 {
      print(42);
      print('h'); print('i');
      print(-7);
      return 0;
    }
  )");
  RunResult R = runProgram(*M);
  EXPECT_EQ(R.Output, "42\nhi-7\n");
}

TEST(Vm, InputBytesAndArgs) {
  auto M = compile(R"(
    fn main() -> i64 {
      var a: i64 = input_arg(0);
      var total: i64 = a;
      var n: i64 = input_size();
      for (var i: i64 = 0; i < n; i = i + 1) {
        total = total + (input_byte() as i64);
      }
      return total;
    }
  )");
  ProgramInput In;
  In.Args = {100};
  In.Bytes = {1, 2, 3, 4};
  EXPECT_EQ(runProgram(*M, In).RetVal, 110u);
}

//===----------------------------------------------------------------------===//
// Failure detection
//===----------------------------------------------------------------------===//

TEST(Vm, DetectsNullDeref) {
  auto M = compile(R"(
    fn main() -> i64 {
      var p: *u32 = null;
      return p[0] as i64;
    }
  )");
  RunResult R = runProgram(*M);
  ASSERT_EQ(R.Status, ExitStatus::Failure);
  EXPECT_EQ(R.Failure.Kind, FailureKind::NullDeref);
}

TEST(Vm, DetectsOutOfBounds) {
  auto M = compile(R"(
    global buf: u8[4];
    fn main() -> i64 {
      var i: i64 = input_arg(0);
      buf[i] = 1;
      return 0;
    }
  )");
  ProgramInput In;
  In.Args = {9};
  RunResult R = runProgram(*M, In);
  ASSERT_EQ(R.Status, ExitStatus::Failure);
  EXPECT_EQ(R.Failure.Kind, FailureKind::OutOfBounds);

  In.Args = {3};
  EXPECT_EQ(runProgram(*M, In).Status, ExitStatus::Ok);
}

TEST(Vm, DetectsUseAfterFree) {
  auto M = compile(R"(
    fn main() -> i64 {
      var p: *i64 = new i64[4];
      delete p;
      return p[0];
    }
  )");
  RunResult R = runProgram(*M);
  ASSERT_EQ(R.Status, ExitStatus::Failure);
  EXPECT_EQ(R.Failure.Kind, FailureKind::UseAfterFree);
}

TEST(Vm, DetectsDoubleFree) {
  auto M = compile(R"(
    fn main() -> i64 {
      var p: *i64 = new i64[4];
      delete p;
      delete p;
      return 0;
    }
  )");
  EXPECT_EQ(runProgram(*M).Failure.Kind, FailureKind::DoubleFree);
}

TEST(Vm, DetectsDivByZero) {
  auto M = compile(R"(
    fn main() -> i64 {
      var d: i64 = input_arg(0);
      return 100 / d;
    }
  )");
  ProgramInput In;
  In.Args = {0};
  EXPECT_EQ(runProgram(*M, In).Failure.Kind, FailureKind::DivByZero);
}

TEST(Vm, AssertLowersToAbort) {
  auto M = compile(R"(
    fn main() -> i64 {
      var x: i64 = input_arg(0);
      assert(x < 10);
      return x;
    }
  )");
  ProgramInput In;
  In.Args = {50};
  RunResult R = runProgram(*M, In);
  ASSERT_EQ(R.Status, ExitStatus::Failure);
  EXPECT_EQ(R.Failure.Kind, FailureKind::Abort);
}

TEST(Vm, FailureIdentityMatchesAcrossRuns) {
  auto M = compile(R"(
    global buf: u8[4];
    fn poke(i: i64) { buf[i] = 1; }
    fn main() -> i64 {
      poke(input_arg(0));
      return 0;
    }
  )");
  ProgramInput A;
  A.Args = {100};
  ProgramInput B;
  B.Args = {200};
  RunResult RA = runProgram(*M, A);
  RunResult RB = runProgram(*M, B);
  ASSERT_EQ(RA.Status, ExitStatus::Failure);
  ASSERT_EQ(RB.Status, ExitStatus::Failure);
  EXPECT_TRUE(RA.Failure.sameFailure(RB.Failure))
      << "same crash site, different inputs";
}

TEST(Vm, InputUnderrunDetected) {
  auto M = compile("fn main() -> i64 { return input_byte() as i64; }");
  RunResult R = runProgram(*M);
  EXPECT_EQ(R.Failure.Kind, FailureKind::InputUnderrun);
}

//===----------------------------------------------------------------------===//
// Threads
//===----------------------------------------------------------------------===//

TEST(Vm, SpawnJoinComputesInParallel) {
  auto M = compile(R"(
    global results: i64[2];
    fn worker(p: *i64) {
      var id: i64 = p[0];
      var sum: i64 = 0;
      for (var i: i64 = 0; i < 1000; i = i + 1) { sum = sum + i; }
      results[id] = sum + id;
    }
    fn main() -> i64 {
      var a0: i64[1];
      var a1: i64[1];
      a0[0] = 0;
      a1[0] = 1;
      var t0: i64 = spawn(worker, a0);
      var t1: i64 = spawn(worker, a1);
      join(t0);
      join(t1);
      return results[0] + results[1];
    }
  )");
  EXPECT_EQ(runProgram(*M).RetVal, 999001u); // 499500*2 + 1
}

TEST(Vm, MutexProtectsCounter) {
  auto M = compile(R"(
    global counter: i64[1];
    fn worker(p: *i64) {
      for (var i: i64 = 0; i < 200; i = i + 1) {
        lock(1);
        counter[0] = counter[0] + 1;
        unlock(1);
      }
    }
    fn main() -> i64 {
      var d: i64[1];
      var t0: i64 = spawn(worker, d);
      var t1: i64 = spawn(worker, d);
      join(t0);
      join(t1);
      return counter[0];
    }
  )");
  EXPECT_EQ(runProgram(*M).RetVal, 400u);
}

TEST(Vm, DeadlockDetected) {
  auto M = compile(R"(
    fn worker(p: *i64) {
      lock(1);
      // Never unlocks.
    }
    fn main() -> i64 {
      var d: i64[1];
      var t: i64 = spawn(worker, d);
      join(t);
      lock(1);
      return 0;
    }
  )");
  RunResult R = runProgram(*M);
  ASSERT_EQ(R.Status, ExitStatus::Failure);
  EXPECT_EQ(R.Failure.Kind, FailureKind::Deadlock);
}

TEST(Vm, ScheduleSeedChangesInterleavingDeterministically) {
  // A racy counter (no lock): different seeds may give different results,
  // but the same seed must always give the same result.
  auto Src = R"(
    global counter: i64[1];
    fn worker(p: *i64) {
      for (var i: i64 = 0; i < 100; i = i + 1) {
        var v: i64 = counter[0];
        counter[0] = v + 1;
      }
    }
    fn main() -> i64 {
      var d: i64[1];
      var t0: i64 = spawn(worker, d);
      var t1: i64 = spawn(worker, d);
      join(t0);
      join(t1);
      return counter[0];
    }
  )";
  auto M = compile(Src);
  VmConfig Cfg;
  Cfg.ScheduleSeed = 7;
  uint64_t First = runProgram(*M, {}, nullptr, Cfg).RetVal;
  uint64_t Second = runProgram(*M, {}, nullptr, Cfg).RetVal;
  EXPECT_EQ(First, Second) << "same seed must replay identically";
}

//===----------------------------------------------------------------------===//
// Trace recording
//===----------------------------------------------------------------------===//

TEST(Trace, RoundTripsControlFlow) {
  auto M = compile(R"(
    fn main() -> i64 {
      var n: i64 = 0;
      for (var i: i64 = 0; i < 5; i = i + 1) { n = n + i; }
      return n;
    }
  )");
  TraceConfig TC;
  TraceRecorder Rec(TC);
  RunResult R = runProgram(*M, {}, &Rec);
  EXPECT_EQ(R.Status, ExitStatus::Ok);

  DecodedTrace D = Rec.decode();
  ASSERT_EQ(D.Threads.size(), 1u);
  const DecodedThread &T = D.Threads[0];
  EXPECT_FALSE(T.TruncatedFront);

  // Chunk instruction counts must cover the whole execution.
  uint64_t ChunkInstrs = 0;
  for (const auto &C : T.Chunks)
    ChunkInstrs += C.NumInstrs;
  EXPECT_EQ(ChunkInstrs, R.InstrCount);

  // Conditional branches: loop condition evaluated 6 times per loop
  // (5 taken + 1 not taken); count them in the event stream.
  unsigned CondBranches = 0;
  for (const auto &E : T.Events)
    if (E.K == TraceEvent::Kind::CondBranch)
      ++CondBranches;
  EXPECT_GE(CondBranches, 6u);
}

TEST(Trace, PtwPacketsCarryValues) {
  TraceConfig TC;
  TraceRecorder Rec(TC);
  Rec.beginThread(0);
  Rec.ptWrite(0, 0xdeadbeef);
  Rec.ptWrite(0, 0x123456789abcULL);
  Rec.condBranch(0, true);
  Rec.finish();
  DecodedTrace D = Rec.decode();
  ASSERT_EQ(D.Threads.size(), 1u);
  std::vector<uint64_t> Data;
  for (const auto &E : D.Threads[0].Events)
    if (E.K == TraceEvent::Kind::Data)
      Data.push_back(E.Value);
  EXPECT_EQ(Data, (std::vector<uint64_t>{0xdeadbeef, 0x123456789abcULL}));
}

TEST(Trace, TntBitsPackSixPerByte) {
  TraceConfig TC;
  TraceRecorder Rec(TC);
  Rec.beginThread(0);
  for (int I = 0; I < 12; ++I)
    Rec.condBranch(0, I % 3 == 0);
  Rec.finish();
  // 12 branches = exactly 2 TNT packets = 2 bytes.
  EXPECT_EQ(Rec.getStats().TntPackets, 2u);
  EXPECT_EQ(Rec.getStats().BytesWritten, 2u);
  DecodedTrace D = Rec.decode();
  ASSERT_EQ(D.Threads[0].Events.size(), 12u);
  for (int I = 0; I < 12; ++I)
    EXPECT_EQ(D.Threads[0].Events[I].Taken, I % 3 == 0) << I;
}

TEST(Trace, RingBufferEvictsOldest) {
  TraceConfig TC;
  TC.BufferBytes = 64; // Tiny ring.
  TraceRecorder Rec(TC);
  Rec.beginThread(0);
  for (int I = 0; I < 200; ++I)
    Rec.returnTarget(0, static_cast<uint32_t>(I));
  Rec.finish();
  DecodedTrace D = Rec.decode();
  EXPECT_TRUE(D.Threads[0].TruncatedFront);
  EXPECT_GT(Rec.getStats().EvictedBytes, 0u);
  // The surviving events are the most recent ones.
  ASSERT_FALSE(D.Threads[0].Events.empty());
  EXPECT_EQ(D.Threads[0].Events.back().Value, 199u);
}

TEST(Trace, MultiThreadStreamsSeparate) {
  auto M = compile(R"(
    global acc: i64[2];
    fn worker(p: *i64) {
      for (var i: i64 = 0; i < 50; i = i + 1) { acc[1] = acc[1] + 1; }
    }
    fn main() -> i64 {
      var d: i64[1];
      var t: i64 = spawn(worker, d);
      for (var i: i64 = 0; i < 50; i = i + 1) { acc[0] = acc[0] + 1; }
      join(t);
      return acc[0] + acc[1];
    }
  )");
  TraceConfig TC;
  TraceRecorder Rec(TC);
  RunResult R = runProgram(*M, {}, &Rec);
  EXPECT_EQ(R.RetVal, 100u);
  DecodedTrace D = Rec.decode();
  ASSERT_EQ(D.Threads.size(), 2u);
  // Both threads produced chunks with timestamps.
  EXPECT_FALSE(D.Threads[0].Chunks.empty());
  EXPECT_FALSE(D.Threads[1].Chunks.empty());
}

//===----------------------------------------------------------------------===//
// The paper's running example (Fig. 3)
//===----------------------------------------------------------------------===//

namespace {

const char *Fig3Source = R"(
// Fig. 3 of the ER paper, as a MiniLang program. foo's arguments arrive as
// program inputs.
global V: u32[256];

fn foo(a: u32, b: u32, c: u32, d: u32) {
  var x: u32 = a + b;
  if ((x < 256 && c < 256) && d < 256) {
    V[x] = 1;
    if (V[c] == 0) {      // implies x != c
      V[c] = 512;
    }
    V[V[x]] = x;
    if (c < d) {          // implies d != c
      if (V[V[d]] == x) {
        abort("fig3 failure");
      }
    }
  }
}

fn main() -> i64 {
  foo(input_arg(0) as u32, input_arg(1) as u32,
      input_arg(2) as u32, input_arg(3) as u32);
  return 0;
}
)";

} // namespace

TEST(Fig3, FailsOnPaperInput) {
  auto M = compile(Fig3Source);
  ProgramInput In;
  In.Args = {0, 2, 0, 2}; // foo(0,2,0,2) from Section 3.2.
  RunResult R = runProgram(*M, In);
  ASSERT_EQ(R.Status, ExitStatus::Failure);
  EXPECT_EQ(R.Failure.Kind, FailureKind::Abort);
  EXPECT_EQ(R.Failure.Message, "fig3 failure");
}

TEST(Fig3, BenignInputsPass) {
  auto M = compile(Fig3Source);
  ProgramInput In;
  In.Args = {1, 2, 3, 4}; // x=3, V[V[4]]=V[0]=... no abort.
  EXPECT_EQ(runProgram(*M, In).Status, ExitStatus::Ok);
}
