//===- LangSemanticsTest.cpp - MiniLang language semantics ---------------------===//
//
// Focused semantics checks: each test runs a small program on the VM and
// pins down one language rule (precedence, signedness, casts, scoping,
// pointers, control flow).
//
//===----------------------------------------------------------------------===//

#include "lang/Codegen.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace er;

namespace {

/// Compiles and runs; returns the i64 result of main.
int64_t evalProgram(const std::string &Body, ProgramInput In = {}) {
  CompileResult R = compileMiniLang(Body);
  EXPECT_TRUE(R.ok()) << R.Error << "\n" << Body;
  if (!R.ok())
    return INT64_MIN;
  Interpreter VM(*R.M, VmConfig());
  RunResult RR = VM.run(In);
  EXPECT_EQ(RR.Status, ExitStatus::Ok) << RR.Failure.describe();
  return static_cast<int64_t>(RR.RetVal);
}

std::string mainOf(const std::string &Body) {
  return "fn main() -> i64 {\n" + Body + "\n}\n";
}

} // namespace

TEST(LangSemantics, OperatorPrecedence) {
  EXPECT_EQ(evalProgram(mainOf("return 2 + 3 * 4;")), 14);
  EXPECT_EQ(evalProgram(mainOf("return (2 + 3) * 4;")), 20);
  EXPECT_EQ(evalProgram(mainOf("return 1 << 3 + 1;")), 16) << "shl below +";
  EXPECT_EQ(evalProgram(mainOf("return 7 & 3 ^ 1;")), 2) << "& above ^";
  EXPECT_EQ(evalProgram(mainOf("return 10 - 4 - 3;")), 3)
      << "left associativity";
  EXPECT_EQ(evalProgram(mainOf("return 100 / 10 / 2;")), 5);
}

TEST(LangSemantics, ComparisonAndLogicalPrecedence) {
  EXPECT_EQ(evalProgram(mainOf(
                "var r: i64 = 0;\n"
                "if (1 + 1 == 2 && 3 < 4) { r = 1; }\n"
                "return r;")),
            1);
}

TEST(LangSemantics, SignedVsUnsignedDivision) {
  EXPECT_EQ(evalProgram(mainOf("var a: i64 = 0 - 7;\nreturn a / 2;")), -3)
      << "signed division truncates toward zero";
  EXPECT_EQ(evalProgram(mainOf("var a: i64 = 0 - 7;\nreturn a % 2;")), -1);
  EXPECT_EQ(evalProgram(mainOf(
                "var a: u8 = 200;\nvar b: u8 = a / 3;\nreturn b as i64;")),
            66);
}

TEST(LangSemantics, ShiftSemantics) {
  EXPECT_EQ(evalProgram(mainOf(
                "var a: i64 = 0 - 8;\nreturn a >> 1;")),
            -4)
      << "arithmetic shift for signed";
  EXPECT_EQ(evalProgram(mainOf(
                "var a: u32 = 0x80000000;\nreturn (a >> 1) as i64;")),
            0x40000000)
      << "logical shift for unsigned";
}

TEST(LangSemantics, NarrowTypeWraparound) {
  EXPECT_EQ(evalProgram(mainOf(
                "var a: u8 = 250;\na = a + 10;\nreturn a as i64;")),
            4)
      << "u8 arithmetic wraps mod 256";
  EXPECT_EQ(evalProgram(mainOf(
                "var a: u32 = 4294967295;\na = a + 1;\nreturn a as i64;")),
            0);
}

TEST(LangSemantics, CastSignExtension) {
  EXPECT_EQ(evalProgram(mainOf(
                "var a: i8 = (0 - 1) as i8;\nreturn a as i64;")),
            -1)
      << "signed source sign-extends";
  EXPECT_EQ(evalProgram(mainOf(
                "var a: u8 = 255;\nreturn a as i64;")),
            255)
      << "unsigned source zero-extends";
  EXPECT_EQ(evalProgram(mainOf(
                "var a: i64 = 0x1ff;\nreturn (a as u8) as i64;")),
            0xff)
      << "narrowing truncates";
}

TEST(LangSemantics, ShortCircuitSideEffects) {
  const char *Src = R"(
    global hits: i64[1];
    fn bump() -> bool { hits[0] = hits[0] + 1; return false; }
    fn main() -> i64 {
      var a: bool = true || bump();
      var b: bool = false && bump();
      if (a && !b) { return hits[0]; }
      return 0 - 1;
    }
  )";
  EXPECT_EQ(evalProgram(Src), 0) << "neither operand may evaluate";
}

TEST(LangSemantics, ForLoopScopeAndContinue) {
  EXPECT_EQ(evalProgram(mainOf(R"(
      var sum: i64 = 0;
      for (var i: i64 = 0; i < 10; i = i + 1) {
        if (i == 3) { continue; }
        if (i == 7) { break; }
        sum = sum + i;
      }
      return sum;)")),
            0 + 1 + 2 + 4 + 5 + 6)
      << "continue must still run the step";
}

TEST(LangSemantics, WhileWithComplexCondition) {
  EXPECT_EQ(evalProgram(mainOf(R"(
      var i: i64 = 0;
      var n: i64 = 0;
      while (i < 20 && n < 50) {
        n = n + i;
        i = i + 1;
      }
      return n;)")),
            55);
}

TEST(LangSemantics, NestedFunctionCalls) {
  const char *Src = R"(
    fn square(x: i64) -> i64 { return x * x; }
    fn sumsq(a: i64, b: i64) -> i64 { return square(a) + square(b); }
    fn main() -> i64 { return sumsq(3, sumsq(1, 2)); }
  )";
  EXPECT_EQ(evalProgram(Src), 9 + 25);
}

TEST(LangSemantics, RecursionDepth) {
  const char *Src = R"(
    fn sum(n: i64) -> i64 {
      if (n == 0) { return 0; }
      return n + sum(n - 1);
    }
    fn main() -> i64 { return sum(100); }
  )";
  EXPECT_EQ(evalProgram(Src), 5050);
}

TEST(LangSemantics, AddressOfElementAndPointerArithmetic) {
  const char *Src = R"(
    fn sum3(p: *u32) -> i64 {
      return (p[0] + p[1] + p[2]) as i64;
    }
    fn main() -> i64 {
      var a: u32[8];
      for (var i: i64 = 0; i < 8; i = i + 1) { a[i] = (i * 10) as u32; }
      return sum3(&a[3]); // 30 + 40 + 50
    }
  )";
  EXPECT_EQ(evalProgram(Src), 120);
}

TEST(LangSemantics, AddressOfScalar) {
  const char *Src = R"(
    fn set(p: *i64, v: i64) { p[0] = v; }
    fn main() -> i64 {
      var x: i64 = 1;
      set(&x, 42);
      return x;
    }
  )";
  EXPECT_EQ(evalProgram(Src), 42);
}

TEST(LangSemantics, PointerTablesInGlobals) {
  const char *Src = R"(
    global slots: *i64[4];
    fn main() -> i64 {
      slots[0] = new i64[2];
      slots[2] = new i64[2];
      var p: *i64 = slots[0];
      p[0] = 11;
      var q: *i64 = slots[2];
      q[0] = 31;
      var total: i64 = 0;
      for (var i: i64 = 0; i < 4; i = i + 1) {
        if (slots[i] != null) {
          var r: *i64 = slots[i];
          total = total + r[0];
        }
      }
      delete slots[0];
      delete slots[2];
      return total;
    }
  )";
  EXPECT_EQ(evalProgram(Src), 42);
}

TEST(LangSemantics, GlobalStringInitializer) {
  const char *Src = R"(
    global msg: u8[8] = "hi!";
    fn main() -> i64 {
      return (msg[0] as i64) * 1000000 + (msg[1] as i64) * 1000 +
             (msg[2] as i64);
    }
  )";
  EXPECT_EQ(evalProgram(Src), 'h' * 1000000 + 'i' * 1000 + '!');
}

TEST(LangSemantics, CharEscapes) {
  EXPECT_EQ(evalProgram(mainOf("return '\\n' as i64;")), 10);
  EXPECT_EQ(evalProgram(mainOf("return '\\x41' as i64;")), 65);
  EXPECT_EQ(evalProgram(mainOf("return '\\0' as i64;")), 0);
}

TEST(LangSemantics, BoolArrays) {
  const char *Src = R"(
    fn main() -> i64 {
      var seen: bool[16];
      seen[3] = true;
      seen[7] = true;
      var n: i64 = 0;
      for (var i: i64 = 0; i < 16; i = i + 1) {
        if (seen[i]) { n = n + 1; }
      }
      return n;
    }
  )";
  EXPECT_EQ(evalProgram(Src), 2);
}

TEST(LangSemantics, ScalarGlobalsDefaultZero) {
  const char *Src = R"(
    global counter: i64;
    global flag: bool;
    fn main() -> i64 {
      if (flag) { return 0 - 1; }
      counter = counter + 5;
      return counter;
    }
  )";
  EXPECT_EQ(evalProgram(Src), 5);
}

TEST(LangSemantics, ImplicitWideningSameSignedness) {
  const char *Src = R"(
    fn main() -> i64 {
      var a: i16 = 1000;
      var b: i64 = 0;
      b = b + (a as i64);
      var c: u8 = 7;
      var d: u32 = 0;
      d = d + c;          // Implicit u8 -> u32 widening.
      return b + (d as i64);
    }
  )";
  EXPECT_EQ(evalProgram(Src), 1007);
}

TEST(LangSemantics, HexLiterals) {
  EXPECT_EQ(evalProgram(mainOf("return 0xff + 0x10;")), 271);
  EXPECT_EQ(evalProgram(mainOf("return 0xABCD & 0xF0F0;")), 0xA0C0);
}

TEST(LangSemantics, ElseIfChains) {
  const char *Src = R"(
    fn classify(v: i64) -> i64 {
      if (v < 10) { return 1; }
      else if (v < 100) { return 2; }
      else if (v < 1000) { return 3; }
      else { return 4; }
    }
    fn main() -> i64 {
      return classify(5) * 1000 + classify(50) * 100 + classify(500) * 10 +
             classify(5000);
    }
  )";
  EXPECT_EQ(evalProgram(Src), 1234);
}

TEST(LangSemantics, VoidFunctionsAndEarlyReturn) {
  const char *Src = R"(
    global out: i64[1];
    fn record(v: i64) {
      if (v < 0) { return; }
      out[0] = out[0] + v;
    }
    fn main() -> i64 {
      record(10);
      record(0 - 5);
      record(20);
      return out[0];
    }
  )";
  EXPECT_EQ(evalProgram(Src), 30);
}

TEST(LangSemantics, MissingReturnYieldsZero) {
  // Falling off the end of a non-void function produces 0 (defined
  // behaviour in MiniLang, unlike C).
  EXPECT_EQ(evalProgram(mainOf("var x: i64 = 3;")), 0);
}

TEST(LangSemantics, ShadowingInNestedScopes) {
  const char *Src = R"(
    fn main() -> i64 {
      var x: i64 = 1;
      if (true) {
        var y: i64 = x + 10;
        x = y;
      }
      return x;
    }
  )";
  EXPECT_EQ(evalProgram(Src), 11);
}

TEST(LangSemantics, SemaRejectsBadPrograms) {
  auto Rejects = [](const char *Src, const char *Why) {
    CompileResult R = compileMiniLang(Src);
    EXPECT_FALSE(R.ok()) << Why;
  };
  Rejects("fn main() -> i64 { var x: u8 = 1; var y: i64 = x; return y; }",
          "cross-signedness/width init without cast is rejected");
  Rejects("fn main() -> i64 { if (1) { } return 0; }",
          "if condition must be bool");
  Rejects("fn f(a: i64) -> i64 { a = 2; return a; } fn main() -> i64 { "
          "return f(1); }",
          "parameters are immutable");
  Rejects("fn main() -> i64 { var a: i64[4]; var b: i64[4]; a = b; "
          "return 0; }",
          "whole-array assignment is rejected");
  Rejects("fn main() -> i64 { return null; }", "null is not an integer");
  Rejects("fn main() -> i64 { var p: *u8 = new u8[4]; return p; }",
          "pointer is not an integer result");
  Rejects("fn main() -> i64 { var v: u8 = 300; return 0; }",
          "literal out of range for u8");
}
