//===- LangFuzz.cpp - Property/fuzz tests for the MiniLang front end -------===//
//
// The generator (src/gen/) makes the MiniLang front end consume machine-
// built programs at scale, so the parser/sema pipeline must be total:
// every byte string either compiles or fails with a diagnostic — never a
// crash, a hang, or unbounded recursion. Checked with seeded randomness
// (IngestFuzz style) so every run explores the same cases:
//
//  1. Adversarial depth: deeply nested parens/unary/pointer types/blocks
//     hit the parser's nesting limit, not the process stack.
//  2. Width: pathologically long operator chains hit the per-statement
//     op budget.
//  3. Token soup: seeded random token streams never crash the pipeline.
//  4. Mutation: generated corpus programs with byte flips / truncations
//     (the likeliest real-world corruption of a corpus file) compile or
//     diagnose, and the *unmutated* program always still compiles.
//
//===----------------------------------------------------------------------===//

#include "gen/GenConfig.h"
#include "lang/Codegen.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace er;

namespace {

constexpr uint64_t FuzzSeed = 20260809;

/// Compiles and only cares that the pipeline terminated with a verdict.
bool compiles(const std::string &Src) {
  CompileResult R = compileMiniLang(Src);
  if (!R.ok()) {
    EXPECT_FALSE(R.Error.empty()) << "rejection must carry a diagnostic";
  }
  return R.ok();
}

TEST(LangFuzz, DeepParenNestingIsDiagnosedNotFatal) {
  // 50k nesting levels would overflow the stack if recursion were
  // unbounded; the parser's depth limit must fire first.
  std::string Src = "fn main() -> i64 { return ";
  Src += std::string(50000, '(');
  Src += "1";
  Src += std::string(50000, ')');
  Src += "; }";
  CompileResult R = compileMiniLang(Src);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("nesting too deep"), std::string::npos) << R.Error;
}

TEST(LangFuzz, DeepUnaryNestingIsDiagnosedNotFatal) {
  std::string Src = "fn main() -> i64 { return ";
  Src += std::string(60000, '-');
  Src += "1; }";
  CompileResult R = compileMiniLang(Src);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("nesting too deep"), std::string::npos) << R.Error;
}

TEST(LangFuzz, DeepPointerTypeNestingIsDiagnosedNotFatal) {
  std::string Src = "fn main() -> i64 { var p: ";
  Src += std::string(60000, '*');
  Src += "i64 = null; return 0; }";
  CompileResult R = compileMiniLang(Src);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("nesting too deep"), std::string::npos) << R.Error;
}

TEST(LangFuzz, DeepBlockNestingIsDiagnosedNotFatal) {
  std::string Src = "fn main() -> i64 { ";
  for (int I = 0; I < 50000; ++I)
    Src += "if (1 < 2) { ";
  Src += "return 0; ";
  for (int I = 0; I < 50000; ++I)
    Src += "} ";
  Src += "return 0; }";
  CompileResult R = compileMiniLang(Src);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("nesting too deep"), std::string::npos) << R.Error;
}

TEST(LangFuzz, HugeOperatorChainIsDiagnosedNotFatal) {
  // Left-associative chains do not deepen recursion, so they need their
  // own budget: 100k '+' terms must hit the per-statement op limit.
  std::string Src = "fn main() -> i64 { return 1";
  for (int I = 0; I < 100000; ++I)
    Src += "+1";
  Src += "; }";
  CompileResult R = compileMiniLang(Src);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("operator limit exceeded"), std::string::npos)
      << R.Error;
}

TEST(LangFuzz, RandomTokenSoupNeverCrashes) {
  static const char *Tokens[] = {
      "fn",  "var",    "if",   "else",  "while", "for",   "return", "assert",
      "new", "delete", "null", "true",  "false", "i64",   "i8",     "u8",
      "bool", "main",  "x",    "(",     ")",     "{",     "}",      "[",
      "]",   ";",      ",",    ":",     "->",    "*",     "+",      "-",
      "/",   "%",      "=",    "==",    "!=",    "<",     "<=",     ">",
      ">=",  "&&",     "||",   "!",     "&",     "as",    "0",      "1",
      "42",  "spawn",  "join", "lock",  "unlock", "print", "abort", "\"s\"",
  };
  constexpr size_t NumTokens = sizeof(Tokens) / sizeof(Tokens[0]);
  Rng R(FuzzSeed);
  for (int Case = 0; Case < 400; ++Case) {
    std::string Src;
    size_t Len = 1 + R.nextBounded(200);
    for (size_t I = 0; I < Len; ++I) {
      Src += Tokens[R.nextBounded(NumTokens)];
      Src += ' ';
    }
    compiles(Src); // Must terminate with a verdict; outcome is free.
  }
}

TEST(LangFuzz, RandomByteSoupNeverCrashes) {
  Rng R(FuzzSeed ^ 0xb17e);
  for (int Case = 0; Case < 200; ++Case) {
    std::string Src;
    size_t Len = R.nextBounded(512);
    for (size_t I = 0; I < Len; ++I)
      Src.push_back(static_cast<char>(R.nextBounded(256)));
    compiles(Src);
  }
}

TEST(LangFuzz, MutatedGeneratedProgramsNeverCrash) {
  // The generator's own output is the front end's steady diet; random
  // single-byte corruptions of it are the realistic hostile input.
  gen::GenConfig GC;
  GC.Seed = FuzzSeed;
  GC.Count = 11; // One program per class.
  std::vector<gen::GeneratedCampaign> Corpus = gen::generateCorpus(GC);
  Rng R(FuzzSeed ^ 0x5eed);
  for (const auto &C : Corpus) {
    ASSERT_TRUE(compiles(C.Source)) << C.Id;
    for (int Mut = 0; Mut < 40; ++Mut) {
      std::string Src = C.Source;
      size_t Pos = R.nextBounded(Src.size());
      Src[Pos] = static_cast<char>(R.nextBounded(256));
      compiles(Src);
    }
  }
}

TEST(LangFuzz, TruncatedGeneratedProgramsNeverCrash) {
  gen::GenConfig GC;
  GC.Seed = FuzzSeed + 1;
  GC.Count = 11;
  std::vector<gen::GeneratedCampaign> Corpus = gen::generateCorpus(GC);
  Rng R(FuzzSeed ^ 0x7a11);
  for (const auto &C : Corpus)
    for (int Cut = 0; Cut < 24; ++Cut)
      compiles(C.Source.substr(0, R.nextBounded(C.Source.size() + 1)));
}

} // namespace
