//===- OptimizeTest.cpp - IR optimizer tests -----------------------------------===//

#include "er/Driver.h"
#include "ir/Optimize.h"
#include "lang/Codegen.h"
#include "support/Rng.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace er;

namespace {

std::unique_ptr<Module> compile(const std::string &Src) {
  CompileResult R = compileMiniLang(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.M);
}

} // namespace

TEST(Optimize, FoldsConstantsAndPrunesDeadCode) {
  auto M = compile(R"(
    fn main() -> i64 {
      var unused: i64 = 3 * 7 + 2;   // Folds, then the store's value is
      var x: i64 = 10 + 20;          // constant.
      if (1 + 1 == 2) {
        x = x + 5;
      }
      return x;
    }
  )");
  unsigned Before = M->getStaticInstructionCount();
  OptStats Stats = optimizeModule(*M);
  EXPECT_GT(Stats.ConstantsFolded, 0u);
  EXPECT_GT(Stats.BranchesSimplified, 0u);
  std::string Err;
  ASSERT_TRUE(verifyModule(*M, &Err)) << Err;
  EXPECT_LT(M->getStaticInstructionCount(), Before);

  Interpreter VM(*M, VmConfig());
  EXPECT_EQ(VM.run(ProgramInput()).RetVal, 35u);
}

TEST(Optimize, PreservesDivisionTraps) {
  auto M = compile(R"(
    fn main() -> i64 {
      var zero: i64 = 5 - 5;
      return 100 / zero;
    }
  )");
  optimizeModule(*M);
  std::string Err;
  ASSERT_TRUE(verifyModule(*M, &Err)) << Err;
  Interpreter VM(*M, VmConfig());
  RunResult RR = VM.run(ProgramInput());
  ASSERT_EQ(RR.Status, ExitStatus::Failure);
  EXPECT_EQ(RR.Failure.Kind, FailureKind::DivByZero)
      << "the optimizer must not fold away runtime traps";
}

TEST(Optimize, SemanticEquivalenceOnRandomPrograms) {
  // Property: for random inputs, the optimized module computes the same
  // result (or the same failure) as the original.
  Rng R(515);
  for (int Round = 0; Round < 10; ++Round) {
    const char *Src = R"(
      global acc: i64[4];
      fn step(v: i64, k: i64) -> i64 {
        var t: i64 = (v * 3 + 7) & 1023;
        acc[k & 3] = acc[k & 3] + t;
        if (t > 512) { return t - 512; }
        return t;
      }
      fn main() -> i64 {
        var x: i64 = input_arg(0);
        var out: i64 = 0;
        for (var i: i64 = 0; i < 40; i = i + 1) {
          out = out + step(x + i, i);
        }
        return out + 2 * 3;   // Foldable tail.
      }
    )";
    auto MPlain = compile(Src);
    auto MOpt = compile(Src);
    optimizeModule(*MOpt);
    std::string Err;
    ASSERT_TRUE(verifyModule(*MOpt, &Err)) << Err;

    ProgramInput In;
    In.Args = {R.nextBounded(100000)};
    Interpreter V1(*MPlain, VmConfig());
    Interpreter V2(*MOpt, VmConfig());
    RunResult R1 = V1.run(In);
    RunResult R2 = V2.run(In);
    ASSERT_EQ(R1.Status, R2.Status);
    EXPECT_EQ(R1.RetVal, R2.RetVal) << "round " << Round;
    EXPECT_LE(R2.InstrCount, R1.InstrCount)
        << "optimization must not add work";
  }
}

TEST(Optimize, ReconstructionWorksOnOptimizedModules) {
  // The production deployment is optimized; ER must still reconstruct.
  auto M = compile(R"(
    global V: u32[64];
    fn main() -> i64 {
      var a: u32 = input_arg(0) as u32;
      var b: u32 = input_arg(1) as u32;
      var x: u32 = a + b + ((2 * 3 - 6) as u32);  // Foldable noise.
      if (x < 64 && b < 64) {
        V[x] = 1;
        if (V[b] == 0) {
          V[b] = 7;
        }
        if (V[V[x]] == 1) {
          abort("optimized failure");
        }
      }
      return 0;
    }
  )");
  OptStats Stats = optimizeModule(*M);
  EXPECT_GT(Stats.total(), 0u);

  DriverConfig DC;
  DC.Seed = 9;
  ReconstructionDriver Driver(*M, DC);
  ReconstructionReport Report = Driver.reconstruct([](Rng &Prod) {
    ProgramInput In;
    In.Args = {Prod.nextBounded(80), Prod.nextBounded(80)};
    return In;
  });
  ASSERT_TRUE(Report.Success) << Report.FailureDetail;
  Interpreter VM(*M, VmConfig());
  RunResult RR = VM.run(Report.TestCase);
  ASSERT_EQ(RR.Status, ExitStatus::Failure);
  EXPECT_TRUE(RR.Failure.sameFailure(Report.Failure));
}

TEST(Optimize, IdempotentAtFixedPoint) {
  auto M = compile("fn main() -> i64 { return 1 + 2 + 3; }");
  optimizeModule(*M);
  OptStats Second = optimizeModule(*M);
  EXPECT_EQ(Second.total(), 0u) << "second run must find nothing";
}
