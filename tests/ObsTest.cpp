//===- ObsTest.cpp - Metrics registry + pipeline tracer tests ---------------===//
//
// Covers the observability subsystem (src/obs/, docs/OBSERVABILITY.md):
// counter correctness under contention, histogram bucket boundaries
// ("le" semantics), span nesting/ordering in the JSONL export, a
// golden-file check of the Chrome trace_event export under an injected
// test clock, ring bounding, the JSON validator itself, and an
// end-to-end check that a real reconstruction emits the documented spans
// and metrics.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/PromExport.h"
#include "obs/Tracer.h"

#include "er/Driver.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace er;

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(ObsMetrics, CounterConcurrentAddsSumExactly) {
  obs::MetricsRegistry Reg;
  obs::Counter &C = Reg.counter("t.concurrent");
  constexpr unsigned Threads = 8;
  constexpr uint64_t PerThread = 100'000;

  std::vector<std::thread> Ts;
  for (unsigned I = 0; I < Threads; ++I)
    Ts.emplace_back([&C] {
      for (uint64_t K = 0; K < PerThread; ++K)
        C.add(1);
    });
  for (auto &T : Ts)
    T.join();

  EXPECT_EQ(C.value(), Threads * PerThread);
}

TEST(ObsMetrics, RegistryFindsSameInstanceByName) {
  obs::MetricsRegistry Reg;
  obs::Counter &A = Reg.counter("t.same");
  obs::Counter &B = Reg.counter("t.same");
  EXPECT_EQ(&A, &B);
  A.add(3);
  EXPECT_EQ(B.value(), 3u);
  EXPECT_NE(&Reg.counter("t.other"), &A);
}

TEST(ObsMetrics, HistogramBucketBoundaries) {
  obs::MetricsRegistry Reg;
  // Buckets: <=10, <=100, <=1000, overflow.
  obs::Histogram &H = Reg.histogram("t.hist", {10, 100, 1000});

  H.record(0);    // <=10
  H.record(10);   // <=10 (boundary lands in its own bucket: "le")
  H.record(11);   // <=100
  H.record(100);  // <=100
  H.record(1000); // <=1000
  H.record(1001); // overflow
  H.record(~0ull); // overflow

  ASSERT_EQ(H.numBuckets(), 4u);
  EXPECT_EQ(H.bucketCount(0), 2u);
  EXPECT_EQ(H.bucketCount(1), 2u);
  EXPECT_EQ(H.bucketCount(2), 1u);
  EXPECT_EQ(H.bucketCount(3), 2u);
  EXPECT_EQ(H.count(), 7u);
  EXPECT_EQ(H.sum(), 0 + 10 + 11 + 100 + 1000 + 1001 + ~0ull);
}

TEST(ObsMetrics, HistogramQuantileBound) {
  obs::MetricsRegistry Reg;
  obs::Histogram &H = Reg.histogram("t.q", {10, 100, 1000});
  for (int I = 0; I < 90; ++I)
    H.record(5); // 90 samples <=10
  for (int I = 0; I < 10; ++I)
    H.record(500); // 10 samples <=1000

  auto Snap = Reg.snapshot();
  const obs::HistogramValue *HV = Snap.histogram("t.q");
  ASSERT_NE(HV, nullptr);
  EXPECT_EQ(HV->quantileBound(0.5), 10u);
  EXPECT_EQ(HV->quantileBound(0.99), 1000u);
  EXPECT_DOUBLE_EQ(HV->mean(), (90.0 * 5 + 10.0 * 500) / 100.0);
}

TEST(ObsMetrics, SnapshotAndResetValues) {
  obs::MetricsRegistry Reg;
  Reg.counter("t.c").add(7);
  Reg.gauge("t.g").set(-5);
  Reg.histogram("t.h").record(64);

  auto Snap = Reg.snapshot();
  EXPECT_EQ(Snap.counterValue("t.c"), 7u);
  EXPECT_EQ(Snap.gaugeValue("t.g"), -5);
  ASSERT_NE(Snap.histogram("t.h"), nullptr);
  EXPECT_EQ(Snap.histogram("t.h")->Count, 1u);
  EXPECT_EQ(Snap.counterValue("t.absent"), 0u);

  Reg.resetValues();
  auto Snap2 = Reg.snapshot();
  EXPECT_EQ(Snap2.counterValue("t.c"), 0u);
  EXPECT_EQ(Snap2.gaugeValue("t.g"), 0);
  EXPECT_EQ(Snap2.histogram("t.h")->Count, 0u);
}

TEST(ObsMetrics, MetricsJsonIsValid) {
  obs::MetricsRegistry Reg;
  Reg.counter("t.c\"quoted\\name").add(1);
  Reg.gauge("t.g").set(42);
  Reg.histogram("t.h", {1, 2}).record(2);

  std::string Doc = obs::metricsToJson(Reg.snapshot());
  std::string Err;
  EXPECT_TRUE(obs::validateJson(Doc, &Err)) << Err << "\n" << Doc;
  EXPECT_NE(Doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(Doc.find("\"histograms\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// JSON validator
//===----------------------------------------------------------------------===//

TEST(ObsJson, ValidatorAcceptsAndRejects) {
  std::string Err;
  EXPECT_TRUE(obs::validateJson("{\"a\": [1, 2.5, -3e2, true, null]}"));
  EXPECT_TRUE(obs::validateJson("  \"lone string\"  "));
  EXPECT_TRUE(obs::validateJson("{\"u\": \"\\u00e9\\n\"}"));

  EXPECT_FALSE(obs::validateJson("", &Err));
  EXPECT_FALSE(obs::validateJson("{", &Err));
  EXPECT_FALSE(obs::validateJson("{\"a\": 1,}", &Err));
  EXPECT_FALSE(obs::validateJson("{\"a\": 01}", &Err));
  EXPECT_FALSE(obs::validateJson("{\"a\": 1} trailing", &Err));
  EXPECT_FALSE(obs::validateJson("{'a': 1}", &Err));
  EXPECT_FALSE(obs::validateJson("{\"a\": \"\x01\"}", &Err));
  EXPECT_FALSE(obs::validateJson("[1 2]", &Err));
}

TEST(ObsJson, ValidateJsonLines) {
  EXPECT_TRUE(obs::validateJsonLines("{\"a\":1}\n{\"b\":2}\n\n"));
  std::string Err;
  EXPECT_FALSE(obs::validateJsonLines("{\"a\":1}\n{bad}\n", &Err));
  EXPECT_NE(Err.find("line 2"), std::string::npos) << Err;
}

TEST(ObsJson, WriterEscapesAndNests) {
  obs::JsonWriter W;
  W.beginObject();
  W.kv("s", std::string_view("a\"b\\c\n\t"));
  W.key("arr");
  W.beginArray();
  W.value(uint64_t(1));
  W.value(-2.5);
  W.value(false);
  W.nullValue();
  W.endArray();
  W.endObject();
  std::string Err;
  EXPECT_TRUE(obs::validateJson(W.str(), &Err)) << Err << "\n" << W.str();
}

//===----------------------------------------------------------------------===//
// Tracer
//===----------------------------------------------------------------------===//

TEST(ObsTracer, DisabledSpansRecordNothing) {
  obs::PipelineTracer T(16);
  {
    obs::ScopedSpan S(T, "t.span");
    S.arg("k", uint64_t(1));
  }
  EXPECT_TRUE(T.snapshot().empty());
  EXPECT_EQ(T.droppedSpans(), 0u);
}

TEST(ObsTracer, SpanNestingAndOrderingInJsonl) {
  obs::PipelineTracer T(64);
  // Deterministic clock: each call advances 1000ns.
  uint64_t Now = 0;
  T.setClockForTesting([&Now] { return Now += 1000; });
  T.setEnabled(true);

  {
    obs::ScopedSpan Outer(T, "outer", "er");
    Outer.arg("iter", uint64_t(1));
    {
      obs::ScopedSpan Inner(T, "inner", "solver");
      Inner.arg("status", "sat");
    }
  }

  auto Spans = T.snapshot();
  ASSERT_EQ(Spans.size(), 2u);
  // Ordered by StartNs: outer opened first.
  EXPECT_EQ(Spans[0].Name, "outer");
  EXPECT_EQ(Spans[0].Depth, 0u);
  EXPECT_EQ(Spans[1].Name, "inner");
  EXPECT_EQ(Spans[1].Depth, 1u);
  // The inner interval is contained in the outer one.
  EXPECT_GE(Spans[1].StartNs, Spans[0].StartNs);
  EXPECT_LE(Spans[1].StartNs + Spans[1].DurNs,
            Spans[0].StartNs + Spans[0].DurNs);

  std::string Jsonl = obs::spansToJsonl(Spans);
  std::string Err;
  EXPECT_TRUE(obs::validateJsonLines(Jsonl, &Err)) << Err << "\n" << Jsonl;
  // One line per span, outer first, with depth and args present.
  size_t NL1 = Jsonl.find('\n');
  ASSERT_NE(NL1, std::string::npos);
  std::string Line1 = Jsonl.substr(0, NL1);
  EXPECT_NE(Line1.find("\"name\":\"outer\""), std::string::npos) << Line1;
  EXPECT_NE(Line1.find("\"depth\":0"), std::string::npos) << Line1;
  EXPECT_NE(Line1.find("\"iter\":1"), std::string::npos) << Line1;
  EXPECT_NE(Jsonl.find("\"depth\":1"), std::string::npos);
  EXPECT_NE(Jsonl.find("\"status\":\"sat\""), std::string::npos);
}

TEST(ObsTracer, ChromeTraceGoldenFile) {
  obs::PipelineTracer T(64);
  uint64_t Now = 0;
  T.setClockForTesting([&Now] {
    uint64_t V = Now;
    Now += 2000; // 2us per clock read.
    return V;
  });
  T.setEnabled(true);

  {
    obs::ScopedSpan Outer(T, "er.iteration", "er");
    Outer.arg("iter", uint64_t(3));
    { obs::ScopedSpan Inner(T, "solver.check_sat", "solver"); }
  }

  // Span timing under the fake clock: each ScopedSpan reads the clock at
  // open and at close. Opens at t=0us (outer), t=2us (inner); closes read
  // 4us (inner: dur 2us) and 6us (outer: dur 6us).
  std::string Doc = obs::spansToChromeTrace(T.snapshot(), T.droppedSpans());
  const char *Golden =
      "{\"traceEvents\":["
      "{\"name\":\"er.iteration\",\"cat\":\"er\",\"ph\":\"X\",\"ts\":0,"
      "\"dur\":6,\"pid\":1,\"tid\":0,\"args\":{\"iter\":3}},"
      "{\"name\":\"solver.check_sat\",\"cat\":\"solver\",\"ph\":\"X\","
      "\"ts\":2,\"dur\":2,\"pid\":1,\"tid\":0,\"args\":{}}],"
      "\"displayTimeUnit\":\"ms\","
      "\"otherData\":{\"tool\":\"er-pipeline-tracer\",\"droppedSpans\":0}}";
  EXPECT_EQ(Doc, Golden);

  std::string Err;
  EXPECT_TRUE(obs::validateJson(Doc, &Err)) << Err;
}

TEST(ObsTracer, RingBoundsAndCountsDrops) {
  obs::PipelineTracer T(4);
  T.setEnabled(true);
  for (int I = 0; I < 10; ++I)
    obs::ScopedSpan S(T, "s" + std::to_string(I));
  auto Spans = T.snapshot();
  EXPECT_EQ(Spans.size(), 4u);
  EXPECT_EQ(T.droppedSpans(), 6u);
  // The survivors are the newest four.
  for (const auto &S : Spans)
    EXPECT_GE(S.Name.at(1), '6');
  T.clear();
  EXPECT_TRUE(T.snapshot().empty());
  EXPECT_EQ(T.droppedSpans(), 0u);
}

TEST(ObsTracer, PerThreadDepthsAreIndependent) {
  obs::PipelineTracer T(64);
  T.setEnabled(true);
  std::atomic<bool> Go{false};
  auto Work = [&] {
    while (!Go.load())
      std::this_thread::yield();
    obs::ScopedSpan A(T, "a");
    obs::ScopedSpan B(T, "b");
  };
  std::thread T1(Work), T2(Work);
  Go.store(true);
  T1.join();
  T2.join();

  auto Spans = T.snapshot();
  ASSERT_EQ(Spans.size(), 4u);
  for (const auto &S : Spans)
    EXPECT_EQ(S.Depth, S.Name == "a" ? 0u : 1u) << S.Name;
}

//===----------------------------------------------------------------------===//
// End to end: a real reconstruction emits the documented telemetry
//===----------------------------------------------------------------------===//

TEST(ObsEndToEnd, DriverEmitsSpansAndMetrics) {
  auto &Tracer = obs::PipelineTracer::global();
  auto &Reg = obs::MetricsRegistry::global();
  Tracer.clear();
  Tracer.setEnabled(true);
  Reg.resetValues();

  const BugSpec &Spec = *findBug("PHP-2012-2386");
  auto M = compileBug(Spec);
  DriverConfig DC;
  DC.Solver.WorkBudget = Spec.SolverWorkBudget;
  DC.Vm.ChunkSize = Spec.VmChunkSize;
  DC.Seed = 20260706;
  ReconstructionDriver Driver(*M, DC);
  ReconstructionReport Report =
      Driver.reconstruct([&](Rng &R) { return Spec.ProductionInput(R); });
  Tracer.setEnabled(false);
  ASSERT_TRUE(Report.Success);

  auto Snap = Reg.snapshot();
  EXPECT_GE(Snap.counterValue("er.iterations"), 1u);
  EXPECT_EQ(Snap.counterValue("er.reproduced"), 1u);
  EXPECT_EQ(Snap.counterValue("er.occurrences"), Report.Occurrences);
  // This bug needs >1 occurrence, so at least one stall was classified.
  EXPECT_GE(Snap.counterValue("er.stalls"), 1u);
  EXPECT_EQ(Snap.counterValue("er.stalls"),
            Snap.counterValue("er.stall.cause.write_chain") +
                Snap.counterValue("er.stall.cause.final_solve") +
                Snap.counterValue("er.stall.cause.other"));
  const obs::HistogramValue *QUs = Snap.histogram("solver.query.us");
  ASSERT_NE(QUs, nullptr);
  EXPECT_GT(QUs->Count, 0u);

  auto Spans = Tracer.snapshot();
  auto CountOf = [&Spans](std::string_view Name) {
    size_t N = 0;
    for (const auto &S : Spans)
      N += S.Name == Name;
    return N;
  };
  EXPECT_EQ(CountOf("er.reconstruct"), 1u);
  EXPECT_EQ(CountOf("er.iteration"), Snap.counterValue("er.iterations"));
  EXPECT_GE(CountOf("er.symex"), 1u);
  EXPECT_GE(CountOf("solver.check_sat"), 1u);

  // The whole span set exports as valid JSONL and a valid Chrome trace.
  std::string Err;
  EXPECT_TRUE(obs::validateJsonLines(obs::spansToJsonl(Spans), &Err)) << Err;
  EXPECT_TRUE(obs::validateJson(
      obs::spansToChromeTrace(Spans, Tracer.droppedSpans()), &Err))
      << Err;
  Tracer.clear();
}

//===----------------------------------------------------------------------===//
// Prometheus exposition (src/obs/PromExport.*)
//===----------------------------------------------------------------------===//

TEST(ObsProm, SanitizeMetricName) {
  EXPECT_EQ(obs::promSanitizeMetricName("daemon.drain.retries"),
            "daemon_drain_retries");
  EXPECT_EQ(obs::promSanitizeMetricName("solver.query.us"), "solver_query_us");
  EXPECT_EQ(obs::promSanitizeMetricName("already_fine"), "already_fine");
  EXPECT_EQ(obs::promSanitizeMetricName("9lives"), "_9lives");
  EXPECT_EQ(obs::promSanitizeMetricName("a-b/c d"), "a_b_c_d");
  EXPECT_EQ(obs::promSanitizeMetricName(""), "_");
  EXPECT_EQ(obs::promSanitizeMetricName("ns:sub"), "ns:sub"); // colons legal
}

TEST(ObsProm, FamilyNamesPerKind) {
  using obs::PromKind;
  EXPECT_EQ(obs::promFamilyNames(PromKind::Counter, "a.b"),
            (std::vector<std::string>{"a_b_total"}));
  EXPECT_EQ(obs::promFamilyNames(PromKind::Gauge, "a.b"),
            (std::vector<std::string>{"a_b"}));
  EXPECT_EQ(obs::promFamilyNames(PromKind::Histogram, "a.b"),
            (std::vector<std::string>{"a_b", "a_b_bucket", "a_b_sum",
                                      "a_b_count"}));
}

TEST(ObsProm, GoldenExposition) {
  obs::MetricsRegistry Reg;
  Reg.counter("golden.requests").add(3);
  Reg.gauge("golden.queue_depth").set(-2);
  obs::Histogram &H = Reg.histogram("golden.latency.ms", {10, 100});
  H.record(5);
  H.record(50);
  H.record(5000);

  const char *Expected = "# TYPE golden_requests_total counter\n"
                         "golden_requests_total 3\n"
                         "# TYPE golden_queue_depth gauge\n"
                         "golden_queue_depth -2\n"
                         "# TYPE golden_latency_ms histogram\n"
                         "golden_latency_ms_bucket{le=\"10\"} 1\n"
                         "golden_latency_ms_bucket{le=\"100\"} 2\n"
                         "golden_latency_ms_bucket{le=\"+Inf\"} 3\n"
                         "golden_latency_ms_sum 5055\n"
                         "golden_latency_ms_count 3\n";
  std::string Doc = obs::metricsToPrometheus(Reg.snapshot());
  EXPECT_EQ(Doc, Expected);

  std::string Err;
  EXPECT_TRUE(obs::promValidateExposition(Doc, &Err)) << Err;
  EXPECT_STREQ(obs::promContentType(),
               "text/plain; version=0.0.4; charset=utf-8");
}

TEST(ObsProm, GlobalRegistryRendersValidExposition) {
  // The full live registry — every metric the pipeline has registered by
  // this point in the test binary — must render to a parseable document.
  // Register one metric of each kind so the test also passes when run
  // alone (an empty registry renders an empty document, which the strict
  // validator rightly rejects).
  obs::MetricsRegistry &G = obs::MetricsRegistry::global();
  G.counter("obstest.probe").inc();
  G.gauge("obstest.level").set(1);
  G.histogram("obstest.lat_ms", {1, 10}).record(3);
  std::string Doc =
      obs::metricsToPrometheus(obs::MetricsRegistry::global().snapshot());
  std::string Err;
  EXPECT_TRUE(obs::promValidateExposition(Doc, &Err)) << Err;
}

TEST(ObsProm, ValidatorRejectsDefects) {
  std::string Err;
  auto Check = [&Err](const char *Doc) {
    Err.clear();
    return obs::promValidateExposition(Doc, &Err);
  };

  EXPECT_FALSE(Check("")) << "empty must be invalid";
  EXPECT_FALSE(Check("# TYPE a counter\na_total 1")) // no trailing newline
      << "missing trailing newline accepted";
  EXPECT_FALSE(Check("orphan 1\n")) << "sample without # TYPE accepted";
  EXPECT_FALSE(Check("# TYPE a counter\na_total -1\n"))
      << "negative counter accepted";
  EXPECT_FALSE(Check("# TYPE a counter\na_total 1\na_total 2\n"))
      << "duplicate series accepted";
  EXPECT_FALSE(Check("# TYPE a counter\n# TYPE a counter\na_total 1\n"))
      << "duplicate TYPE accepted";
  EXPECT_FALSE(Check("# TYPE h histogram\n"
                     "h_bucket{le=\"10\"} 5\n"
                     "h_bucket{le=\"100\"} 3\n" // not cumulative
                     "h_bucket{le=\"+Inf\"} 5\n"
                     "h_sum 1\nh_count 5\n"))
      << "non-cumulative buckets accepted";
  EXPECT_FALSE(Check("# TYPE h histogram\n"
                     "h_bucket{le=\"100\"} 1\n"
                     "h_bucket{le=\"10\"} 2\n" // le not increasing
                     "h_bucket{le=\"+Inf\"} 2\n"
                     "h_sum 1\nh_count 2\n"))
      << "descending le accepted";
  EXPECT_FALSE(Check("# TYPE h histogram\n"
                     "h_bucket{le=\"10\"} 1\n"
                     "h_sum 1\nh_count 1\n"))
      << "histogram without +Inf accepted";
  EXPECT_FALSE(Check("# TYPE h histogram\n"
                     "h_bucket{le=\"10\"} 1\n"
                     "h_bucket{le=\"+Inf\"} 2\n"
                     "h_sum 1\nh_count 3\n")) // +Inf != _count
      << "+Inf/_count mismatch accepted";
  EXPECT_FALSE(Check("# TYPE a gauge\na{l=unquoted} 1\n"))
      << "unquoted label accepted";
  EXPECT_FALSE(Check("# TYPE a gauge\na nan-ish\n"))
      << "garbage value accepted";

  // And the shapes it must accept.
  EXPECT_TRUE(Check("# plain comment\n# TYPE a gauge\na 1\n")) << Err;
  EXPECT_TRUE(Check("# HELP a free text here\n# TYPE a gauge\na -3.5\n"))
      << Err;
  EXPECT_TRUE(Check("# TYPE a gauge\na{l=\"x,\\\"y\\\"\\n\"} 1 1700000\n"))
      << Err;
  EXPECT_TRUE(Check("# TYPE h histogram\n"
                    "h_bucket{le=\"10\"} 1\n"
                    "h_bucket{le=\"+Inf\"} 2\n"
                    "h_sum 12\nh_count 2\n"))
      << Err;
}

TEST(ObsMetrics, QuantileBoundContract) {
  // Pinned contract of HistogramValue::quantileBound (see Metrics.h).
  obs::MetricsRegistry Reg;

  // Empty histogram: 0 for every Q.
  {
    obs::Histogram &H = Reg.histogram("t.qc.empty", {10, 100});
    (void)H;
    auto S = Reg.snapshot();
    const obs::HistogramValue *V = S.histogram("t.qc.empty");
    ASSERT_NE(V, nullptr);
    EXPECT_EQ(V->quantileBound(0), 0u);
    EXPECT_EQ(V->quantileBound(0.5), 0u);
    EXPECT_EQ(V->quantileBound(1), 0u);
  }

  // Endpoints: Q<=0 -> first non-empty bucket; Q>=1 -> last non-empty.
  {
    obs::Histogram &H = Reg.histogram("t.qc.mid", {10, 100, 1000});
    H.record(50);  // bucket <=100
    H.record(500); // bucket <=1000
    auto S = Reg.snapshot();
    const obs::HistogramValue *V = S.histogram("t.qc.mid");
    ASSERT_NE(V, nullptr);
    EXPECT_EQ(V->quantileBound(0), 100u);
    EXPECT_EQ(V->quantileBound(-2.5), 100u); // clamped, no UB
    EXPECT_EQ(V->quantileBound(1), 1000u);
    EXPECT_EQ(V->quantileBound(7.0), 1000u); // clamped
  }

  // Every sample in the overflow bucket: +inf (UINT64_MAX) for all Q > 0,
  // and for Q<=0 too — the first non-empty bucket IS the overflow bucket.
  {
    obs::Histogram &H = Reg.histogram("t.qc.over", {10});
    H.record(11);
    H.record(99);
    auto S = Reg.snapshot();
    const obs::HistogramValue *V = S.histogram("t.qc.over");
    ASSERT_NE(V, nullptr);
    EXPECT_EQ(V->quantileBound(0), UINT64_MAX);
    EXPECT_EQ(V->quantileBound(0.5), UINT64_MAX);
    EXPECT_EQ(V->quantileBound(1), UINT64_MAX);
  }

  // Q=1 with a non-empty overflow bucket answers +inf even when earlier
  // buckets hold most samples.
  {
    obs::Histogram &H = Reg.histogram("t.qc.tail", {10});
    for (int I = 0; I < 9; ++I)
      H.record(5);
    H.record(1 << 20);
    auto S = Reg.snapshot();
    const obs::HistogramValue *V = S.histogram("t.qc.tail");
    ASSERT_NE(V, nullptr);
    EXPECT_EQ(V->quantileBound(0.5), 10u);
    EXPECT_EQ(V->quantileBound(1), UINT64_MAX);
  }
}

TEST(ObsMetrics, ExpositionNameCollisionRejected) {
  obs::MetricsRegistry Reg;
  obs::Counter &First = Reg.counter("coll.cycles");
  // Different registry name, identical exposition family after
  // sanitization: rejected with a detached instrument.
  obs::Counter &Clash = Reg.counter("coll_cycles");
  EXPECT_NE(&First, &Clash);
  EXPECT_EQ(Reg.rejectedNameCollisions(), 1u);

  First.add(2);
  Clash.add(100); // Writable, but never exported.
  auto S = Reg.snapshot();
  EXPECT_EQ(S.counterValue("coll.cycles"), 2u);
  EXPECT_EQ(S.counterValue("coll_cycles"), 0u);

  // Re-registering the same name is a find, never a collision.
  EXPECT_EQ(&Reg.counter("coll.cycles"), &First);
  EXPECT_EQ(Reg.rejectedNameCollisions(), 1u);

  // Cross-kind: a histogram owns base, _bucket, _sum and _count; a gauge
  // landing on any of them is ambiguous and must be rejected.
  Reg.histogram("coll.lat", {10});
  Reg.gauge("coll.lat.sum");
  EXPECT_EQ(Reg.rejectedNameCollisions(), 2u);
  auto S2 = Reg.snapshot();
  EXPECT_EQ(S2.gaugeValue("coll.lat.sum"), 0);

  // A counter after a gauge of the same dotted name is NOT a collision:
  // the counter exposes `_total`, the gauge the bare name.
  Reg.gauge("coll.mixed");
  Reg.counter("coll.mixed");
  EXPECT_EQ(Reg.rejectedNameCollisions(), 2u);

  // The exposition of a registry containing near-miss names stays valid.
  std::string Err;
  EXPECT_TRUE(obs::promValidateExposition(
      obs::metricsToPrometheus(Reg.snapshot()), &Err))
      << Err;
}
