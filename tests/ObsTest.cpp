//===- ObsTest.cpp - Metrics registry + pipeline tracer tests ---------------===//
//
// Covers the observability subsystem (src/obs/, docs/OBSERVABILITY.md):
// counter correctness under contention, histogram bucket boundaries
// ("le" semantics), span nesting/ordering in the JSONL export, a
// golden-file check of the Chrome trace_event export under an injected
// test clock, ring bounding, the JSON validator itself, and an
// end-to-end check that a real reconstruction emits the documented spans
// and metrics.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Tracer.h"

#include "er/Driver.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace er;

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(ObsMetrics, CounterConcurrentAddsSumExactly) {
  obs::MetricsRegistry Reg;
  obs::Counter &C = Reg.counter("t.concurrent");
  constexpr unsigned Threads = 8;
  constexpr uint64_t PerThread = 100'000;

  std::vector<std::thread> Ts;
  for (unsigned I = 0; I < Threads; ++I)
    Ts.emplace_back([&C] {
      for (uint64_t K = 0; K < PerThread; ++K)
        C.add(1);
    });
  for (auto &T : Ts)
    T.join();

  EXPECT_EQ(C.value(), Threads * PerThread);
}

TEST(ObsMetrics, RegistryFindsSameInstanceByName) {
  obs::MetricsRegistry Reg;
  obs::Counter &A = Reg.counter("t.same");
  obs::Counter &B = Reg.counter("t.same");
  EXPECT_EQ(&A, &B);
  A.add(3);
  EXPECT_EQ(B.value(), 3u);
  EXPECT_NE(&Reg.counter("t.other"), &A);
}

TEST(ObsMetrics, HistogramBucketBoundaries) {
  obs::MetricsRegistry Reg;
  // Buckets: <=10, <=100, <=1000, overflow.
  obs::Histogram &H = Reg.histogram("t.hist", {10, 100, 1000});

  H.record(0);    // <=10
  H.record(10);   // <=10 (boundary lands in its own bucket: "le")
  H.record(11);   // <=100
  H.record(100);  // <=100
  H.record(1000); // <=1000
  H.record(1001); // overflow
  H.record(~0ull); // overflow

  ASSERT_EQ(H.numBuckets(), 4u);
  EXPECT_EQ(H.bucketCount(0), 2u);
  EXPECT_EQ(H.bucketCount(1), 2u);
  EXPECT_EQ(H.bucketCount(2), 1u);
  EXPECT_EQ(H.bucketCount(3), 2u);
  EXPECT_EQ(H.count(), 7u);
  EXPECT_EQ(H.sum(), 0 + 10 + 11 + 100 + 1000 + 1001 + ~0ull);
}

TEST(ObsMetrics, HistogramQuantileBound) {
  obs::MetricsRegistry Reg;
  obs::Histogram &H = Reg.histogram("t.q", {10, 100, 1000});
  for (int I = 0; I < 90; ++I)
    H.record(5); // 90 samples <=10
  for (int I = 0; I < 10; ++I)
    H.record(500); // 10 samples <=1000

  auto Snap = Reg.snapshot();
  const obs::HistogramValue *HV = Snap.histogram("t.q");
  ASSERT_NE(HV, nullptr);
  EXPECT_EQ(HV->quantileBound(0.5), 10u);
  EXPECT_EQ(HV->quantileBound(0.99), 1000u);
  EXPECT_DOUBLE_EQ(HV->mean(), (90.0 * 5 + 10.0 * 500) / 100.0);
}

TEST(ObsMetrics, SnapshotAndResetValues) {
  obs::MetricsRegistry Reg;
  Reg.counter("t.c").add(7);
  Reg.gauge("t.g").set(-5);
  Reg.histogram("t.h").record(64);

  auto Snap = Reg.snapshot();
  EXPECT_EQ(Snap.counterValue("t.c"), 7u);
  EXPECT_EQ(Snap.gaugeValue("t.g"), -5);
  ASSERT_NE(Snap.histogram("t.h"), nullptr);
  EXPECT_EQ(Snap.histogram("t.h")->Count, 1u);
  EXPECT_EQ(Snap.counterValue("t.absent"), 0u);

  Reg.resetValues();
  auto Snap2 = Reg.snapshot();
  EXPECT_EQ(Snap2.counterValue("t.c"), 0u);
  EXPECT_EQ(Snap2.gaugeValue("t.g"), 0);
  EXPECT_EQ(Snap2.histogram("t.h")->Count, 0u);
}

TEST(ObsMetrics, MetricsJsonIsValid) {
  obs::MetricsRegistry Reg;
  Reg.counter("t.c\"quoted\\name").add(1);
  Reg.gauge("t.g").set(42);
  Reg.histogram("t.h", {1, 2}).record(2);

  std::string Doc = obs::metricsToJson(Reg.snapshot());
  std::string Err;
  EXPECT_TRUE(obs::validateJson(Doc, &Err)) << Err << "\n" << Doc;
  EXPECT_NE(Doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(Doc.find("\"histograms\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// JSON validator
//===----------------------------------------------------------------------===//

TEST(ObsJson, ValidatorAcceptsAndRejects) {
  std::string Err;
  EXPECT_TRUE(obs::validateJson("{\"a\": [1, 2.5, -3e2, true, null]}"));
  EXPECT_TRUE(obs::validateJson("  \"lone string\"  "));
  EXPECT_TRUE(obs::validateJson("{\"u\": \"\\u00e9\\n\"}"));

  EXPECT_FALSE(obs::validateJson("", &Err));
  EXPECT_FALSE(obs::validateJson("{", &Err));
  EXPECT_FALSE(obs::validateJson("{\"a\": 1,}", &Err));
  EXPECT_FALSE(obs::validateJson("{\"a\": 01}", &Err));
  EXPECT_FALSE(obs::validateJson("{\"a\": 1} trailing", &Err));
  EXPECT_FALSE(obs::validateJson("{'a': 1}", &Err));
  EXPECT_FALSE(obs::validateJson("{\"a\": \"\x01\"}", &Err));
  EXPECT_FALSE(obs::validateJson("[1 2]", &Err));
}

TEST(ObsJson, ValidateJsonLines) {
  EXPECT_TRUE(obs::validateJsonLines("{\"a\":1}\n{\"b\":2}\n\n"));
  std::string Err;
  EXPECT_FALSE(obs::validateJsonLines("{\"a\":1}\n{bad}\n", &Err));
  EXPECT_NE(Err.find("line 2"), std::string::npos) << Err;
}

TEST(ObsJson, WriterEscapesAndNests) {
  obs::JsonWriter W;
  W.beginObject();
  W.kv("s", std::string_view("a\"b\\c\n\t"));
  W.key("arr");
  W.beginArray();
  W.value(uint64_t(1));
  W.value(-2.5);
  W.value(false);
  W.nullValue();
  W.endArray();
  W.endObject();
  std::string Err;
  EXPECT_TRUE(obs::validateJson(W.str(), &Err)) << Err << "\n" << W.str();
}

//===----------------------------------------------------------------------===//
// Tracer
//===----------------------------------------------------------------------===//

TEST(ObsTracer, DisabledSpansRecordNothing) {
  obs::PipelineTracer T(16);
  {
    obs::ScopedSpan S(T, "t.span");
    S.arg("k", uint64_t(1));
  }
  EXPECT_TRUE(T.snapshot().empty());
  EXPECT_EQ(T.droppedSpans(), 0u);
}

TEST(ObsTracer, SpanNestingAndOrderingInJsonl) {
  obs::PipelineTracer T(64);
  // Deterministic clock: each call advances 1000ns.
  uint64_t Now = 0;
  T.setClockForTesting([&Now] { return Now += 1000; });
  T.setEnabled(true);

  {
    obs::ScopedSpan Outer(T, "outer", "er");
    Outer.arg("iter", uint64_t(1));
    {
      obs::ScopedSpan Inner(T, "inner", "solver");
      Inner.arg("status", "sat");
    }
  }

  auto Spans = T.snapshot();
  ASSERT_EQ(Spans.size(), 2u);
  // Ordered by StartNs: outer opened first.
  EXPECT_EQ(Spans[0].Name, "outer");
  EXPECT_EQ(Spans[0].Depth, 0u);
  EXPECT_EQ(Spans[1].Name, "inner");
  EXPECT_EQ(Spans[1].Depth, 1u);
  // The inner interval is contained in the outer one.
  EXPECT_GE(Spans[1].StartNs, Spans[0].StartNs);
  EXPECT_LE(Spans[1].StartNs + Spans[1].DurNs,
            Spans[0].StartNs + Spans[0].DurNs);

  std::string Jsonl = obs::spansToJsonl(Spans);
  std::string Err;
  EXPECT_TRUE(obs::validateJsonLines(Jsonl, &Err)) << Err << "\n" << Jsonl;
  // One line per span, outer first, with depth and args present.
  size_t NL1 = Jsonl.find('\n');
  ASSERT_NE(NL1, std::string::npos);
  std::string Line1 = Jsonl.substr(0, NL1);
  EXPECT_NE(Line1.find("\"name\":\"outer\""), std::string::npos) << Line1;
  EXPECT_NE(Line1.find("\"depth\":0"), std::string::npos) << Line1;
  EXPECT_NE(Line1.find("\"iter\":1"), std::string::npos) << Line1;
  EXPECT_NE(Jsonl.find("\"depth\":1"), std::string::npos);
  EXPECT_NE(Jsonl.find("\"status\":\"sat\""), std::string::npos);
}

TEST(ObsTracer, ChromeTraceGoldenFile) {
  obs::PipelineTracer T(64);
  uint64_t Now = 0;
  T.setClockForTesting([&Now] {
    uint64_t V = Now;
    Now += 2000; // 2us per clock read.
    return V;
  });
  T.setEnabled(true);

  {
    obs::ScopedSpan Outer(T, "er.iteration", "er");
    Outer.arg("iter", uint64_t(3));
    { obs::ScopedSpan Inner(T, "solver.check_sat", "solver"); }
  }

  // Span timing under the fake clock: each ScopedSpan reads the clock at
  // open and at close. Opens at t=0us (outer), t=2us (inner); closes read
  // 4us (inner: dur 2us) and 6us (outer: dur 6us).
  std::string Doc = obs::spansToChromeTrace(T.snapshot(), T.droppedSpans());
  const char *Golden =
      "{\"traceEvents\":["
      "{\"name\":\"er.iteration\",\"cat\":\"er\",\"ph\":\"X\",\"ts\":0,"
      "\"dur\":6,\"pid\":1,\"tid\":0,\"args\":{\"iter\":3}},"
      "{\"name\":\"solver.check_sat\",\"cat\":\"solver\",\"ph\":\"X\","
      "\"ts\":2,\"dur\":2,\"pid\":1,\"tid\":0,\"args\":{}}],"
      "\"displayTimeUnit\":\"ms\","
      "\"otherData\":{\"tool\":\"er-pipeline-tracer\",\"droppedSpans\":0}}";
  EXPECT_EQ(Doc, Golden);

  std::string Err;
  EXPECT_TRUE(obs::validateJson(Doc, &Err)) << Err;
}

TEST(ObsTracer, RingBoundsAndCountsDrops) {
  obs::PipelineTracer T(4);
  T.setEnabled(true);
  for (int I = 0; I < 10; ++I)
    obs::ScopedSpan S(T, "s" + std::to_string(I));
  auto Spans = T.snapshot();
  EXPECT_EQ(Spans.size(), 4u);
  EXPECT_EQ(T.droppedSpans(), 6u);
  // The survivors are the newest four.
  for (const auto &S : Spans)
    EXPECT_GE(S.Name.at(1), '6');
  T.clear();
  EXPECT_TRUE(T.snapshot().empty());
  EXPECT_EQ(T.droppedSpans(), 0u);
}

TEST(ObsTracer, PerThreadDepthsAreIndependent) {
  obs::PipelineTracer T(64);
  T.setEnabled(true);
  std::atomic<bool> Go{false};
  auto Work = [&] {
    while (!Go.load())
      std::this_thread::yield();
    obs::ScopedSpan A(T, "a");
    obs::ScopedSpan B(T, "b");
  };
  std::thread T1(Work), T2(Work);
  Go.store(true);
  T1.join();
  T2.join();

  auto Spans = T.snapshot();
  ASSERT_EQ(Spans.size(), 4u);
  for (const auto &S : Spans)
    EXPECT_EQ(S.Depth, S.Name == "a" ? 0u : 1u) << S.Name;
}

//===----------------------------------------------------------------------===//
// End to end: a real reconstruction emits the documented telemetry
//===----------------------------------------------------------------------===//

TEST(ObsEndToEnd, DriverEmitsSpansAndMetrics) {
  auto &Tracer = obs::PipelineTracer::global();
  auto &Reg = obs::MetricsRegistry::global();
  Tracer.clear();
  Tracer.setEnabled(true);
  Reg.resetValues();

  const BugSpec &Spec = *findBug("PHP-2012-2386");
  auto M = compileBug(Spec);
  DriverConfig DC;
  DC.Solver.WorkBudget = Spec.SolverWorkBudget;
  DC.Vm.ChunkSize = Spec.VmChunkSize;
  DC.Seed = 20260706;
  ReconstructionDriver Driver(*M, DC);
  ReconstructionReport Report =
      Driver.reconstruct([&](Rng &R) { return Spec.ProductionInput(R); });
  Tracer.setEnabled(false);
  ASSERT_TRUE(Report.Success);

  auto Snap = Reg.snapshot();
  EXPECT_GE(Snap.counterValue("er.iterations"), 1u);
  EXPECT_EQ(Snap.counterValue("er.reproduced"), 1u);
  EXPECT_EQ(Snap.counterValue("er.occurrences"), Report.Occurrences);
  // This bug needs >1 occurrence, so at least one stall was classified.
  EXPECT_GE(Snap.counterValue("er.stalls"), 1u);
  EXPECT_EQ(Snap.counterValue("er.stalls"),
            Snap.counterValue("er.stall.cause.write_chain") +
                Snap.counterValue("er.stall.cause.final_solve") +
                Snap.counterValue("er.stall.cause.other"));
  const obs::HistogramValue *QUs = Snap.histogram("solver.query.us");
  ASSERT_NE(QUs, nullptr);
  EXPECT_GT(QUs->Count, 0u);

  auto Spans = Tracer.snapshot();
  auto CountOf = [&Spans](std::string_view Name) {
    size_t N = 0;
    for (const auto &S : Spans)
      N += S.Name == Name;
    return N;
  };
  EXPECT_EQ(CountOf("er.reconstruct"), 1u);
  EXPECT_EQ(CountOf("er.iteration"), Snap.counterValue("er.iterations"));
  EXPECT_GE(CountOf("er.symex"), 1u);
  EXPECT_GE(CountOf("solver.check_sat"), 1u);

  // The whole span set exports as valid JSONL and a valid Chrome trace.
  std::string Err;
  EXPECT_TRUE(obs::validateJsonLines(obs::spansToJsonl(Spans), &Err)) << Err;
  EXPECT_TRUE(obs::validateJson(
      obs::spansToChromeTrace(Spans, Tracer.droppedSpans()), &Err))
      << Err;
  Tracer.clear();
}
