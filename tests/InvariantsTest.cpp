//===- InvariantsTest.cpp - Likely-invariant engine tests ---------------------===//

#include "invariants/Invariants.h"
#include "lang/Codegen.h"

#include <gtest/gtest.h>

using namespace er;

namespace {

std::unique_ptr<Module> compile(const std::string &Src) {
  CompileResult R = compileMiniLang(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.M);
}

const char *Checked = R"(
  fn process(kind: i64, size: i64) -> i64 {
    var out: i64 = kind * 100 + size;
    return out;
  }
  fn main() -> i64 {
    var kind: i64 = input_arg(0);
    var size: i64 = input_arg(1);
    return process(kind, size);
  }
)";

ProgramInput args(uint64_t A, uint64_t B) {
  ProgramInput In;
  In.Args = {A, B};
  return In;
}

} // namespace

TEST(Invariants, InfersRangesAndValueSets) {
  auto M = compile(Checked);
  InvariantEngine E(*M);
  EXPECT_TRUE(E.observePassingRun(args(1, 10), VmConfig()));
  EXPECT_TRUE(E.observePassingRun(args(2, 20), VmConfig()));
  EXPECT_TRUE(E.observePassingRun(args(1, 30), VmConfig()));
  EXPECT_TRUE(E.observePassingRun(args(2, 40), VmConfig()));
  E.infer();

  // arg0 in {1, 2}; arg1 in {10..40}; ret nonzero, etc.
  bool SawKindSet = false, SawPair = false;
  for (const auto &Inv : E.invariants()) {
    if (Inv.Point == "entry:process" && Inv.Text == "arg0 in {1, 2}")
      SawKindSet = true;
    if (Inv.Point == "entry:process" && Inv.Text == "arg0 <= arg1")
      SawPair = true;
  }
  EXPECT_TRUE(SawKindSet);
  EXPECT_TRUE(SawPair);
}

TEST(Invariants, FlagsViolationsOnFailingRun) {
  auto M = compile(Checked);
  InvariantEngine E(*M);
  for (auto &In : {args(1, 10), args(2, 20), args(1, 30), args(2, 40)})
    EXPECT_TRUE(E.observePassingRun(In, VmConfig()));
  E.infer();

  auto Violations = E.checkFailingRun(args(7, 3), VmConfig());
  ASSERT_FALSE(Violations.empty());
  // The out-of-profile kind must be flagged at the process entry.
  bool Flagged = false;
  for (const auto &V : Violations)
    if (V.Inv.Point == "entry:process" &&
        V.Inv.Text.find("arg0") != std::string::npos)
      Flagged = true;
  EXPECT_TRUE(Flagged);
}

TEST(Invariants, NoViolationsOnInProfileRun) {
  auto M = compile(Checked);
  InvariantEngine E(*M);
  for (auto &In : {args(1, 10), args(2, 20), args(1, 30), args(2, 40)})
    EXPECT_TRUE(E.observePassingRun(In, VmConfig()));
  E.infer();
  auto Violations = E.checkFailingRun(args(2, 20), VmConfig());
  EXPECT_TRUE(Violations.empty());
}

TEST(Invariants, FailingObservationRunsAreRejected) {
  auto M = compile(R"(
    fn main() -> i64 {
      var x: i64 = input_arg(0);
      assert(x != 0);
      return x;
    }
  )");
  InvariantEngine E(*M);
  EXPECT_FALSE(E.observePassingRun(args(0, 0), VmConfig()))
      << "a failing run must not contribute invariants";
  EXPECT_TRUE(E.observePassingRun(args(5, 0), VmConfig()));
}

TEST(Invariants, ViolationsRankedByFirstOccurrence) {
  auto M = compile(R"(
    fn early(v: i64) -> i64 { return v + 1; }
    fn late(v: i64) -> i64 { return v * 2; }
    fn main() -> i64 {
      var x: i64 = input_arg(0);
      var a: i64 = early(x);
      var b: i64 = late(a);
      return b;
    }
  )");
  InvariantEngine E(*M);
  for (uint64_t V : {3ull, 4ull, 5ull, 6ull}) {
    ProgramInput In;
    In.Args = {V};
    EXPECT_TRUE(E.observePassingRun(In, VmConfig()));
  }
  E.infer();
  ProgramInput Bad;
  Bad.Args = {1000};
  auto Violations = E.checkFailingRun(Bad, VmConfig());
  ASSERT_GE(Violations.size(), 2u);
  // The first-violated point (early) ranks before the later one.
  EXPECT_LE(Violations.front().FirstAtObservation,
            Violations.back().FirstAtObservation);
  EXPECT_EQ(Violations.front().Inv.Point, "entry:early");
}
