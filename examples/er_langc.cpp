//===- er_lang.cpp - MiniLang compiler driver -------------------------------------===//
//
// A conventional compiler-driver front end over the library:
//
//   er_langc run <file.mini> [--arg N]... [--input FILE|--bytes HEX]
//   er_langc ir <file.mini>            print the generated IR
//   er_langc trace <file.mini> [...]   run under PT-style tracing, dump stats
//
// MiniLang reference: see the workloads in src/workloads/*.cpp and the
// grammar comment in src/lang/Parser.cpp.
//
//===----------------------------------------------------------------------===//

#include "lang/Codegen.h"
#include "trace/OverheadModel.h"
#include "trace/Trace.h"
#include "vm/Interpreter.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace er;

namespace {

int usage() {
  std::printf("usage: er_langc run   <file.mini> [--arg N]... [--input FILE] "
              "[--bytes HEX]\n"
              "       er_langc ir    <file.mini>\n"
              "       er_langc trace <file.mini> [run options]\n");
  return 2;
}

bool readFile(const char *Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

bool parseRunArgs(int argc, char **argv, int First, ProgramInput &In) {
  for (int I = First; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--arg") && I + 1 < argc) {
      In.Args.push_back(std::strtoull(argv[++I], nullptr, 0));
    } else if (!std::strcmp(argv[I], "--input") && I + 1 < argc) {
      std::string Data;
      if (!readFile(argv[++I], Data)) {
        std::printf("cannot read input file '%s'\n", argv[I]);
        return false;
      }
      In.Bytes.assign(Data.begin(), Data.end());
    } else if (!std::strcmp(argv[I], "--bytes") && I + 1 < argc) {
      const char *Hex = argv[++I];
      size_t Len = std::strlen(Hex);
      for (size_t K = 0; K + 1 < Len; K += 2) {
        char Buf[3] = {Hex[K], Hex[K + 1], 0};
        In.Bytes.push_back(
            static_cast<uint8_t>(std::strtoul(Buf, nullptr, 16)));
      }
    } else {
      std::printf("unknown option '%s'\n", argv[I]);
      return false;
    }
  }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 3)
    return usage();
  const char *Cmd = argv[1];
  const char *Path = argv[2];

  std::string Source;
  if (!readFile(Path, Source)) {
    std::printf("cannot read '%s'\n", Path);
    return 1;
  }
  CompileResult CR = compileMiniLang(Source);
  if (!CR.ok()) {
    std::printf("%s: %s\n", Path, CR.Error.c_str());
    return 1;
  }

  if (!std::strcmp(Cmd, "ir")) {
    std::fputs(printModule(*CR.M).c_str(), stdout);
    return 0;
  }

  ProgramInput In;
  if (!parseRunArgs(argc, argv, 3, In))
    return 2;

  if (!std::strcmp(Cmd, "run")) {
    Interpreter VM(*CR.M, VmConfig());
    RunResult RR = VM.run(In);
    std::fputs(RR.Output.c_str(), stdout);
    if (RR.Status == ExitStatus::Failure) {
      std::printf("FAILURE: %s\n", RR.Failure.describe().c_str());
      return 1;
    }
    std::printf("exit value: %lld (%llu instructions)\n",
                static_cast<long long>(RR.RetVal),
                static_cast<unsigned long long>(RR.InstrCount));
    return 0;
  }

  if (!std::strcmp(Cmd, "trace")) {
    TraceConfig TC;
    TraceRecorder Rec(TC);
    Interpreter VM(*CR.M, VmConfig());
    RunResult RR = VM.run(In, &Rec);
    const TraceStats &TS = Rec.getStats();
    std::printf("status:      %s\n",
                RR.Status == ExitStatus::Failure
                    ? RR.Failure.describe().c_str()
                    : "ok");
    std::printf("instructions: %llu across %llu thread(s)\n",
                static_cast<unsigned long long>(RR.InstrCount),
                static_cast<unsigned long long>(RR.NumThreads));
    std::printf("trace bytes:  %llu (TNT %llu, TIP %llu, chunk %llu, "
                "PTW %llu)\n",
                static_cast<unsigned long long>(TS.BytesWritten),
                static_cast<unsigned long long>(TS.TntPackets),
                static_cast<unsigned long long>(TS.TipPackets),
                static_cast<unsigned long long>(TS.ChunkPackets),
                static_cast<unsigned long long>(TS.PtwPackets));
    OverheadParams P;
    std::printf("modelled PT overhead: %.3f%%\n",
                erOverheadPercentExact(RR.InstrCount, TS, P));
    return RR.Status == ExitStatus::Failure ? 1 : 0;
  }
  return usage();
}
