//===- quickstart.cpp - ER public API in ~60 lines -------------------------------===//
//
// The smallest end-to-end use of the library:
//   1. compile a MiniLang program that crashes on certain inputs,
//   2. hand the (mutable) module to the ReconstructionDriver together with
//      a production input distribution,
//   3. receive a concrete failing test case, and replay it.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "er/Driver.h"
#include "support/Rng.h"
#include "lang/Codegen.h"
#include "vm/Interpreter.h"

#include <cstdio>

using namespace er;

int main() {
  // A service that parses a tiny login packet; a malformed length crashes
  // it. Production traffic is mostly well-formed.
  const char *Source = R"(
    global sessions: u32[64];
    fn main() -> i64 {
      var magic: u8 = input_byte();
      if (magic != 0x4c) { return 1; }    // 'L'
      var user: u8 = input_byte();
      var len: u8 = input_byte();
      var sum: i64 = 0;
      for (var i: i64 = 0; i < (len as i64); i = i + 1) {
        sum = sum + (input_byte() as i64);
      }
      // BUG: the session slot is the unvalidated user id.
      sessions[user as i64] = (sum % 1000) as u32;
      return sum;
    }
  )";

  CompileResult CR = compileMiniLang(Source);
  if (!CR.ok()) {
    std::printf("compile error: %s\n", CR.Error.c_str());
    return 1;
  }

  ReconstructionDriver Driver(*CR.M, DriverConfig());
  ReconstructionReport Report = Driver.reconstruct([](Rng &R) {
    ProgramInput In;
    In.Bytes.push_back(0x4c);
    // user ids are usually valid; rarely a corrupted packet arrives.
    In.Bytes.push_back(static_cast<uint8_t>(
        R.nextBool(0.2) ? 64 + R.nextBounded(190) : R.nextBounded(64)));
    uint8_t Len = static_cast<uint8_t>(2 + R.nextBounded(6));
    In.Bytes.push_back(Len);
    for (uint8_t I = 0; I < Len; ++I)
      In.Bytes.push_back(static_cast<uint8_t>(R.nextBounded(256)));
    return In;
  });

  if (!Report.Success) {
    std::printf("reconstruction failed: %s\n", Report.FailureDetail.c_str());
    return 1;
  }

  std::printf("failure:    %s\n", Report.Failure.describe().c_str());
  std::printf("occurrences consumed: %u\n", Report.Occurrences);
  std::printf("generated test case:  %s\n",
              Report.TestCase.describe().c_str());
  std::printf("test bytes: ");
  for (uint8_t B : Report.TestCase.Bytes)
    std::printf("%02x ", B);
  std::printf("\n");

  // Replay the generated input: it must hit the same failure.
  Interpreter VM(*CR.M, VmConfig());
  RunResult RR = VM.run(Report.TestCase);
  std::printf("replay:     %s\n",
              RR.Status == ExitStatus::Failure ? RR.Failure.describe().c_str()
                                               : "did not fail (BUG)");
  return RR.Status == ExitStatus::Failure ? 0 : 1;
}
