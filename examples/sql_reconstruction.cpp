//===- sql_reconstruction.cpp - Reconstructing a database CLI crash ---------------===//
//
// The scenario the paper's evaluation highlights for SQLite: a CLI-level
// mode interaction (".stats" / ".eqp") crashes the process on specific
// command sequences. This example runs the full ER loop on the
// SQLite-7be932d analog and then *diffs* the generated command stream
// against the production one, illustrating Section 5.2's observation that
// the reconstructed input can differ from the original while following the
// same control flow.
//
// Build & run:  ./build/examples/sql_reconstruction
//
//===----------------------------------------------------------------------===//

#include "er/Driver.h"
#include "vm/Interpreter.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace er;

namespace {

void printCommands(const char *Label, const std::vector<uint8_t> &Bytes) {
  std::printf("%s (%zu bytes): ", Label, Bytes.size());
  for (size_t I = 0; I < Bytes.size() && I < 48; ++I) {
    uint8_t B = Bytes[I];
    if (B >= 32 && B < 127)
      std::printf("%c", B);
    else
      std::printf("\\x%02x", B);
  }
  if (Bytes.size() > 48)
    std::printf("...");
  std::printf("\n");
}

} // namespace

int main() {
  const BugSpec &Spec = *findBug("SQLite-7be932d");
  auto M = compileBug(Spec);

  std::printf("reconstructing %s (%s, %s)\n\n", Spec.Id.c_str(),
              Spec.App.c_str(), Spec.BugType.c_str());

  // Keep the production input around so we can compare afterwards.
  ProgramInput LastProduction;
  DriverConfig DC;
  DC.Solver.WorkBudget = Spec.SolverWorkBudget;
  DC.Seed = 1234;
  ReconstructionDriver Driver(*M, DC);
  ReconstructionReport Report = Driver.reconstruct([&](Rng &R) {
    LastProduction = Spec.ProductionInput(R);
    return LastProduction;
  });

  if (!Report.Success) {
    std::printf("reconstruction failed: %s\n", Report.FailureDetail.c_str());
    return 1;
  }

  std::printf("failure: %s\n", Report.Failure.describe().c_str());
  std::printf("occurrences consumed: %u; symbolic execution: %.2fs\n\n",
              Report.Occurrences, Report.TotalSymexSeconds);

  printCommands("production command stream ", LastProduction.Bytes);
  printCommands("reconstructed test case   ", Report.TestCase.Bytes);
  std::printf("\nThe streams may differ byte-for-byte (query bounds are "
              "only constrained by the branches they drove), exactly like "
              "the paper's sEleCT-vs-SELECT observation — yet:\n\n");

  Interpreter VM(*M, VmConfig());
  RunResult RR = VM.run(Report.TestCase);
  if (RR.Status == ExitStatus::Failure &&
      RR.Failure.sameFailure(Report.Failure)) {
    std::printf("replaying the reconstructed input reproduces the same "
                "failure: %s\n",
                RR.Failure.describe().c_str());
    return 0;
  }
  std::printf("replay mismatch (unexpected)\n");
  return 1;
}
