//===- running_example.cpp - The paper's Fig. 3/Fig. 4 walkthrough ---------------===//
//
// Narrates the paper's running example end to end:
//   - Fig. 3's foo(a,b,c,d) aborts for inputs like (0,2,0,2);
//   - iteration 1: shepherded symbolic execution follows the control-flow
//     trace, stalls on the symbolic accesses to V, and key data value
//     selection picks a recording set (the paper derives {x, c});
//   - subsequent occurrences carry ptwrite data until the failure is
//     reproduced and a concrete test case pops out.
//
// Build & run:  ./build/examples/running_example
//
//===----------------------------------------------------------------------===//

#include "er/ConstraintGraph.h"
#include "er/Driver.h"
#include "er/Instrumenter.h"
#include "support/Rng.h"
#include "er/Selection.h"
#include "lang/Codegen.h"
#include "symex/SymExecutor.h"
#include "vm/Interpreter.h"

#include <cstdio>

using namespace er;

static const char *Fig3 = R"(
global V: u32[256];

fn foo(a: u32, b: u32, c: u32, d: u32) {
  var x: u32 = a + b;
  if ((x < 256 && c < 256) && d < 256) {
    V[x] = 1;
    if (V[c] == 0) {      // implies x != c
      V[c] = 512;
    }
    V[V[x]] = x;
    if (c < d) {          // implies d != c
      if (V[V[d]] == x) {
        abort("fig3 failure");
      }
    }
  }
}

fn main() -> i64 {
  foo(input_arg(0) as u32, input_arg(1) as u32,
      input_arg(2) as u32, input_arg(3) as u32);
  return 0;
}
)";

int main() {
  CompileResult CR = compileMiniLang(Fig3);
  if (!CR.ok()) {
    std::printf("compile error: %s\n", CR.Error.c_str());
    return 1;
  }
  Module &M = *CR.M;

  std::printf("== Fig. 3: the program fails for foo(0,2,0,2) ==\n");
  {
    Interpreter VM(M, VmConfig());
    ProgramInput In;
    In.Args = {0, 2, 0, 2};
    RunResult RR = VM.run(In);
    std::printf("concrete run: %s\n\n", RR.Failure.describe().c_str());
  }

  std::printf("== Iteration 1: control flow only -> stall -> selection ==\n");
  {
    TraceConfig TC;
    TraceRecorder Rec(TC);
    Interpreter VM(M, VmConfig());
    ProgramInput In;
    In.Args = {0, 2, 0, 2};
    RunResult RR = VM.run(In, &Rec);

    ExprContext Ctx;
    SolverConfig SC;
    SC.WorkBudget = 2000; // Small stall threshold, as in the narration.
    ConstraintSolver Solver(Ctx, SC);
    ShepherdedExecutor SE(M, Ctx, Solver, SymexConfig());
    SymexResult SR = SE.run(Rec.decode(), RR.Failure);
    std::printf("shepherded symbolic execution: %s (%s)\n",
                symexStatusName(SR.Status), SR.Detail.c_str());

    ConstraintGraph Graph(SR.Snapshot);
    std::printf("constraint graph: %llu nodes, %llu edges\n",
                (unsigned long long)Graph.numNodes(),
                (unsigned long long)Graph.numEdges());
    if (const ObjectChain *Chain = Graph.longestChain())
      std::printf("longest symbolic write chain: %zu writes over '%s' "
                  "(%llu bytes)\n",
                  Chain->Writes.size(), Chain->Name.c_str(),
                  (unsigned long long)Chain->byteSize());

    KeyValueSelector Sel(Graph);
    std::printf("bottleneck set (%zu elements):\n",
                Sel.bottleneckSet().size());
    for (ExprRef E : Sel.bottleneckSet())
      std::printf("  %s\n", Ctx.toString(E).c_str());
    RecordingPlan Plan = Sel.computeRecordingSet();
    std::printf("recording set after cost minimization (%zu elements, "
                "total cost %llu):\n",
                Plan.Values.size(), (unsigned long long)Plan.totalCost());
    for (const auto &V : Plan.Values)
      std::printf("  %s  (instr %u, %u bytes x %llu execs)\n",
                  Ctx.toString(V.E).c_str(), V.OriginInstr, V.WidthBytes,
                  (unsigned long long)V.DynCount);
  }

  std::printf("\n== Full iterative reconstruction ==\n");
  {
    // A fresh module (the walkthrough above did not instrument).
    CompileResult CR2 = compileMiniLang(Fig3);
    DriverConfig DC;
    DC.Solver.WorkBudget = 2000;
    DC.Seed = 42;
    ReconstructionDriver Driver(*CR2.M, DC);
    ReconstructionReport Report = Driver.reconstruct([](Rng &R) {
      ProgramInput In;
      if (R.nextBool(0.5))
        In.Args = {0, 2, 0, 2};
      else
        In.Args = {R.nextBounded(300), R.nextBounded(300),
                   R.nextBounded(300), R.nextBounded(300)};
      return In;
    });
    if (!Report.Success) {
      std::printf("reconstruction failed: %s\n",
                  Report.FailureDetail.c_str());
      return 1;
    }
    std::printf("reproduced after %u occurrence(s) (paper: 3 for this "
                "example)\n",
                Report.Occurrences);
    std::printf("generated foo(%llu, %llu, %llu, %llu) — may differ from "
                "(0,2,0,2) but follows the same path\n",
                (unsigned long long)Report.TestCase.Args[0],
                (unsigned long long)Report.TestCase.Args[1],
                (unsigned long long)Report.TestCase.Args[2],
                (unsigned long long)Report.TestCase.Args[3]);
    Interpreter VM(*CR2.M, VmConfig());
    RunResult RR = VM.run(Report.TestCase);
    std::printf("replay: %s\n", RR.Failure.describe().c_str());
  }
  return 0;
}
