//===- concurrent_reconstruction.cpp - Reconstructing a concurrency bug -----------===//
//
// Section 3.4 in practice: the pbzip2-style use-after-free only manifests
// under particular thread interleavings. The PT-style trace's timestamped
// chunks give shepherded symbolic execution a partial order of the two
// threads; the generated test case is the pair (input bytes, schedule)
// and replays deterministically.
//
// Build & run:  ./build/examples/concurrent_reconstruction
//
//===----------------------------------------------------------------------===//

#include "er/Driver.h"
#include "vm/Interpreter.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace er;

int main() {
  const BugSpec &Spec = *findBug("Pbzip2");
  auto M = compileBug(Spec);

  std::printf("reconstructing %s (%s, %s, multithreaded)\n\n",
              Spec.Id.c_str(), Spec.App.c_str(), Spec.BugType.c_str());

  // First: show the bug is schedule-dependent — find an input that passes
  // under some interleavings and fails under others.
  {
    Rng R(5);
    for (int Attempt = 0; Attempt < 50; ++Attempt) {
      ProgramInput In = Spec.ProductionInput(R);
      unsigned Failures = 0, Runs = 40;
      for (unsigned K = 0; K < Runs; ++K) {
        VmConfig VC;
        VC.ChunkSize = Spec.VmChunkSize;
        VC.ScheduleSeed = K;
        Interpreter VM(*M, VC);
        if (VM.run(In).Status == ExitStatus::Failure)
          ++Failures;
      }
      if (Failures > 0 && Failures < Runs) {
        std::printf("one fixed input, %u schedules: %u failing / %u "
                    "passing (the race window)\n\n",
                    Runs, Failures, Runs - Failures);
        break;
      }
    }
  }

  DriverConfig DC;
  DC.Solver.WorkBudget = Spec.SolverWorkBudget;
  DC.Vm.ChunkSize = Spec.VmChunkSize;
  DC.Seed = 77;
  ReconstructionDriver Driver(*M, DC);
  ReconstructionReport Report =
      Driver.reconstruct([&](Rng &R) { return Spec.ProductionInput(R); });

  if (!Report.Success) {
    std::printf("reconstruction failed: %s\n", Report.FailureDetail.c_str());
    return 1;
  }

  std::printf("failure: %s\n", Report.Failure.describe().c_str());
  std::printf("occurrences consumed: %u\n", Report.Occurrences);
  std::printf("test case: %s + schedule seed %llu\n\n",
              Report.TestCase.describe().c_str(),
              (unsigned long long)Report.ReplayScheduleSeed);

  // Deterministic replay under the reconstructed schedule.
  VmConfig VC;
  VC.ChunkSize = Spec.VmChunkSize;
  VC.ScheduleSeed = Report.ReplayScheduleSeed;
  for (int K = 0; K < 3; ++K) {
    Interpreter VM(*M, VC);
    RunResult RR = VM.run(Report.TestCase);
    std::printf("replay %d: %s\n", K + 1,
                RR.Status == ExitStatus::Failure
                    ? RR.Failure.describe().c_str()
                    : "no failure (BUG)");
    if (RR.Status != ExitStatus::Failure ||
        !RR.Failure.sameFailure(Report.Failure))
      return 1;
  }
  std::printf("\nthe use-after-free replays deterministically under the "
              "reconstructed schedule.\n");
  return 0;
}
