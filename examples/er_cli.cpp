//===- er_cli.cpp - Command-line front end over the bug corpus --------------------===//
//
// A small operator tool over the library:
//
//   er_cli list                 show the 13 evaluation bugs
//   er_cli run <BugId> [seed]   run the full ER loop on one bug
//   er_cli trace <BugId>        show trace statistics for one failing run
//   er_cli fleet ...            in-process deployment simulation
//   er_cli report ...           one production machine -> spool directory
//   er_cli collect ...          drain a spool into a fleet run
//
// Build & run:  ./build/examples/er_cli list
//
//===----------------------------------------------------------------------===//

#include "er/Driver.h"
#include "fleet/FleetScheduler.h"
#include "gen/CorpusWriter.h"
#include "ingest/CollectorDaemon.h"
#include "ingest/ReportCollector.h"
#include "ingest/ReportSpool.h"
#include "net/ReportClient.h"
#include "obs/Metrics.h"
#include "obs/PromExport.h"
#include "obs/Tracer.h"
#include "support/FaultFs.h"
#include "support/Rng.h"
#include "trace/OverheadModel.h"
#include "vm/Interpreter.h"
#include "workloads/Workloads.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <vector>

using namespace er;

static int usage() {
  std::printf(
      "usage: er_cli list\n"
      "       er_cli run <BugId> [seed] [telemetry flags]\n"
      "       er_cli trace <BugId>\n"
      "       er_cli gen     [--seed S] [--count N] [--out DIR]\n"
      "                      [--classes tag,tag,...] [--check]\n"
      "                      [telemetry flags]\n"
      "       er_cli fleet   [--jobs N] [--seed S] [--machines M] [--runs R]\n"
      "                      [--bugs id,id,...] [--corpus DIR] [--state FILE]\n"
      "                      [telemetry flags]\n"
      "       er_cli report  (--spool DIR | --push URL) --machine ID\n"
      "                      [--runs R] [--seed S] [--bugs id,id,...]\n"
      "                      [--first-seq N] [--timeout-ms N]\n"
      "       er_cli pushfleet --url URL [--machines M] [--jobs N]\n"
      "                      [--runs R] [--seed S] [--bugs id,id,...]\n"
      "                      [--timeout-ms N] [--push-retries N]\n"
      "       er_cli collect --spool DIR [--jobs N] [--seed S] [--state FILE]\n"
      "                      [--max-pending N] [--keep-drained]\n"
      "                      [--daemon] [--interval-ms N] [--max-cycles N]\n"
      "                      [--step-budget N] [--retries N] [--preempt-hot N]\n"
      "                      [--listen HOST:PORT] [--body-cap BYTES]\n"
      "                      [--fixed-interval] [--min-interval-ms N]\n"
      "                      [--high-files N] [--high-bytes N]\n"
      "                      [--low-files N] [--low-bytes N]\n"
      "                      [--cycle-deadline-ms N]\n"
      "                      [--stall-dir DIR] [--metrics-every N]\n"
      "                      [--metrics-json FILE] [telemetry flags]\n"
      "       er_cli stats   [--jobs N] [--seed S] [--machines M] [--runs R]\n"
      "                      [--bugs id,id,...] [telemetry flags]\n"
      "       er_cli promcheck FILE|http://HOST:PORT/metrics\n"
      "\n"
      "telemetry flags (docs/OBSERVABILITY.md):\n"
      "  --metrics-out FILE   export the metrics registry as JSON\n"
      "  --trace-out FILE     export pipeline spans as a Chrome trace_event\n"
      "                       document (chrome://tracing / Perfetto)\n"
      "  --trace-jsonl FILE   export pipeline spans as JSONL (one per line)\n"
      "Span recording is enabled iff a trace output is requested (or for\n"
      "`stats`, always); metrics counters are always on.\n"
      "\n"
      "gen: synthesize a seeded bug corpus (docs/WORKLOADS.md) — N\n"
      "campaigns round-robin over the planted-bug taxonomy (or the\n"
      "--classes subset; tags: bufov intbug nullptr uaf dfree divzero\n"
      "logic leak race lostupd dlock). The corpus is a pure function of\n"
      "--seed: byte-identical across runs and prefix-stable in --count.\n"
      "--out writes one .mlc file per campaign plus a MANIFEST (written\n"
      "last, temp+rename); --check regenerates and verifies determinism\n"
      "and serialization round-trips.\n"
      "\n"
      "fleet: simulate a deployment — M machines x R production runs per\n"
      "workload feed a triage queue; deduplicated failure buckets are\n"
      "reconstructed as N concurrent campaigns sharing a solver cache.\n"
      "--corpus loads a generated corpus directory (er_cli gen --out) and\n"
      "registers its campaigns as the workload set (--bugs still filters\n"
      "by id). --state persists/resumes triage across invocations.\n"
      "\n"
      "report/collect: the cross-process path (docs/INGEST.md). `report`\n"
      "runs ONE production machine and appends its failures to a spool\n"
      "directory — or, with --push, uploads each frame to a daemon's\n"
      "POST /report endpoint (429/503 retried with backoff + jitter);\n"
      "`collect` drains the spool (validating, quarantining,\n"
      "deduplicating) into the same triage + campaign pipeline. Draining\n"
      "what machines 0..M-1 reported reproduces `fleet --machines M`\n"
      "byte-for-byte, whether the frames arrived by filesystem or wire.\n"
      "\n"
      "pushfleet: M simulated machines upload concurrently (--jobs pusher\n"
      "threads) to one daemon over localhost — the end-to-end wire\n"
      "ingestion exerciser (docs/INGEST.md, \"Wire ingestion\").\n"
      "\n"
      "collect --daemon: stay resident and drain the spool up to every\n"
      "--interval-ms (default 250; an adaptive maximum — cycles come\n"
      "sooner as spool pressure rises, down to --min-interval-ms;\n"
      "--fixed-interval pins the classic cadence), advancing campaigns\n"
      "incrementally between drains (--step-budget steps per cycle, 0 =\n"
      "until idle) and checkpointing --state atomically each cycle.\n"
      "Transient drain I/O errors are retried --retries times with\n"
      "doubling backoff.\n"
      "--preempt-hot N suspends the weakest running campaign when a\n"
      "pending bucket reaches N occurrences. SIGINT/SIGTERM stop the loop\n"
      "cleanly after a final checkpoint; ER_FAULT_SPEC injects scripted\n"
      "filesystem faults (docs/INGEST.md).\n"
      "\n"
      "daemon live telemetry (docs/OBSERVABILITY.md, \"Live endpoints\"):\n"
      "--listen serves GET /metrics (Prometheus text exposition), /healthz\n"
      "and /status (JSON), and accepts report uploads on POST /report\n"
      "(docs/INGEST.md, \"Wire ingestion\"; bodies up to --body-cap,\n"
      "default 1 MiB) — port 0 binds an ephemeral port, printed on\n"
      "startup. Uploads are answered 429 (and, deeper in, 503 at accept)\n"
      "while the spool sits past --high-files/--high-bytes, until it\n"
      "falls back under --low-files/--low-bytes.\n"
      "--cycle-deadline-ms arms a watchdog around each cycle: a\n"
      "cycle exceeding it flips /healthz unhealthy and dumps stall\n"
      "diagnostics into --stall-dir. --metrics-every N atomically rewrites\n"
      "--metrics-json (default metrics.json) every N cycles.\n"
      "\n"
      "stats: run the fleet pipeline with tracing on and print the full\n"
      "metric catalog and a per-phase span time summary as text tables.\n"
      "\n"
      "promcheck: strict Prometheus text-exposition parse of FILE — or of\n"
      "a live endpoint when given an http:// URL (scraped with a 5 s\n"
      "deadline); exit 0 iff valid. CI gates scrapes on it.\n");
  return 2;
}

//===----------------------------------------------------------------------===//
// Telemetry flags (shared by run / fleet / collect / stats)
//===----------------------------------------------------------------------===//

namespace {
struct TelemetryOptions {
  std::string MetricsOut;
  std::string TraceOut;   ///< Chrome trace_event document.
  std::string TraceJsonl; ///< One span object per line.

  bool wantsTrace() const { return !TraceOut.empty() || !TraceJsonl.empty(); }

  /// Turns on span recording when any trace output was requested.
  void enableTracing(bool Force = false) const {
    if (Force || wantsTrace())
      obs::PipelineTracer::global().setEnabled(true);
  }

  /// Writes every requested file; returns 0, or 1 on any write failure.
  int exportAll() const {
    int Rc = 0;
    std::string Err;
    if (!MetricsOut.empty()) {
      auto Snap = obs::MetricsRegistry::global().snapshot();
      if (obs::exportMetricsJson(Snap, MetricsOut, &Err))
        std::printf("metrics written to %s\n", MetricsOut.c_str());
      else {
        std::printf("cannot write metrics: %s\n", Err.c_str());
        Rc = 1;
      }
    }
    if (!TraceOut.empty()) {
      if (obs::exportChromeTrace(obs::PipelineTracer::global(), TraceOut,
                                 &Err))
        std::printf("chrome trace written to %s\n", TraceOut.c_str());
      else {
        std::printf("cannot write trace: %s\n", Err.c_str());
        Rc = 1;
      }
    }
    if (!TraceJsonl.empty()) {
      if (obs::exportSpansJsonl(obs::PipelineTracer::global(), TraceJsonl,
                                &Err))
        std::printf("span jsonl written to %s\n", TraceJsonl.c_str());
      else {
        std::printf("cannot write span jsonl: %s\n", Err.c_str());
        Rc = 1;
      }
    }
    return Rc;
  }
};

/// Consumes argv[I] (and its value) when it is a telemetry flag. Returns
/// 1 if consumed, 0 if not a telemetry flag, -1 on a missing value.
int parseTelemetryArg(int argc, char **argv, int &I, TelemetryOptions &T) {
  std::string *Dest = nullptr;
  if (!std::strcmp(argv[I], "--metrics-out"))
    Dest = &T.MetricsOut;
  else if (!std::strcmp(argv[I], "--trace-out"))
    Dest = &T.TraceOut;
  else if (!std::strcmp(argv[I], "--trace-jsonl"))
    Dest = &T.TraceJsonl;
  else
    return 0;
  if (I + 1 >= argc) {
    std::printf("%s needs a value\n", argv[I]);
    return -1;
  }
  *Dest = argv[++I];
  return 1;
}
} // namespace

static int cmdList() {
  std::printf("%-22s %-34s %-28s %s\n", "BugId", "Application", "Bug type",
              "MT");
  for (const auto &S : allBugSpecs())
    std::printf("%-22s %-34s %-28s %s\n", S.Id.c_str(), S.App.c_str(),
                S.BugType.c_str(), S.Multithreaded ? "yes" : "no");
  return 0;
}

static int cmdRun(const BugSpec &Spec, uint64_t Seed,
                  const TelemetryOptions &Telemetry) {
  Telemetry.enableTracing();
  auto M = compileBug(Spec);
  DriverConfig DC;
  DC.Solver.WorkBudget = Spec.SolverWorkBudget;
  DC.Vm.ChunkSize = Spec.VmChunkSize;
  DC.Seed = Seed;
  ReconstructionDriver Driver(*M, DC);
  ReconstructionReport Report =
      Driver.reconstruct([&](Rng &R) { return Spec.ProductionInput(R); });

  std::printf("bug:          %s (%s)\n", Spec.Id.c_str(), Spec.App.c_str());
  if (!Report.Success) {
    std::printf("result:       FAILED — %s\n", Report.FailureDetail.c_str());
    Telemetry.exportAll();
    return 1;
  }
  std::printf("result:       reproduced\n");
  std::printf("failure:      %s\n", Report.Failure.describe().c_str());
  std::printf("occurrences:  %u\n", Report.Occurrences);
  std::printf("symbex time:  %.2fs\n", Report.TotalSymexSeconds);
  std::printf("test case:    %s (schedule seed %llu)\n",
              Report.TestCase.describe().c_str(),
              (unsigned long long)Report.ReplayScheduleSeed);
  for (size_t I = 0; I < Report.Iterations.size(); ++I) {
    const IterationReport &IR = Report.Iterations[I];
    std::printf("  iteration %zu: %-12s +%u recorded values "
                "(%u sites total), trace %llu bytes, symbex %.2fs\n",
                I + 1, symexStatusName(IR.Status), IR.NewRecordedValues,
                IR.TotalInstrumentationSites,
                (unsigned long long)IR.Trace.BytesWritten, IR.SymexSeconds);
  }

  VmConfig VC;
  VC.ChunkSize = Spec.VmChunkSize;
  VC.ScheduleSeed = Report.ReplayScheduleSeed;
  Interpreter VM(*M, VC);
  RunResult RR = VM.run(Report.TestCase);
  std::printf("replay:       %s\n",
              RR.Status == ExitStatus::Failure ? RR.Failure.describe().c_str()
                                               : "no failure (BUG)");
  return Telemetry.exportAll();
}

static int cmdTrace(const BugSpec &Spec) {
  auto M = compileBug(Spec);
  Rng R(1);
  VmConfig VC;
  VC.ChunkSize = Spec.VmChunkSize;
  for (int Tries = 0; Tries < 5000; ++Tries) {
    ProgramInput In = Spec.ProductionInput(R);
    VC.ScheduleSeed = R.next();
    TraceConfig TC;
    TraceRecorder Rec(TC);
    Interpreter VM(*M, VC);
    RunResult RR = VM.run(In, &Rec);
    if (RR.Status != ExitStatus::Failure)
      continue;
    const TraceStats &TS = Rec.getStats();
    std::printf("failing run:  %llu instructions, %llu threads\n",
                (unsigned long long)RR.InstrCount,
                (unsigned long long)RR.NumThreads);
    std::printf("trace:        %llu bytes (%llu TNT, %llu TIP, %llu chunk, "
                "%llu PTW packets)\n",
                (unsigned long long)TS.BytesWritten,
                (unsigned long long)TS.TntPackets,
                (unsigned long long)TS.TipPackets,
                (unsigned long long)TS.ChunkPackets,
                (unsigned long long)TS.PtwPackets);
    OverheadParams P;
    std::printf("modelled recording overhead: %.3f%%\n",
                erOverheadPercentExact(RR.InstrCount, TS, P));
    return 0;
  }
  std::printf("no failing run found\n");
  return 1;
}

/// Splits a comma-separated --bugs value.
static void splitBugList(const char *V, std::vector<std::string> &BugIds) {
  std::string S = V;
  size_t Start = 0;
  while (Start <= S.size()) {
    size_t Comma = S.find(',', Start);
    if (Comma == std::string::npos)
      Comma = S.size();
    if (Comma > Start)
      BugIds.push_back(S.substr(Start, Comma - Start));
    Start = Comma + 1;
  }
}

/// Resolves --bugs ids (or, empty, the whole corpus) to specs; false and a
/// message on an unknown id.
static bool resolveCorpus(const std::vector<std::string> &BugIds,
                          std::vector<const BugSpec *> &Corpus) {
  if (BugIds.empty()) {
    for (const auto &S : allBugSpecs())
      Corpus.push_back(&S);
    return true;
  }
  for (const auto &Id : BugIds) {
    const BugSpec *S = findBug(Id);
    if (!S) {
      std::printf("unknown bug id '%s' (try: er_cli list)\n", Id.c_str());
      return false;
    }
    Corpus.push_back(S);
  }
  return true;
}

/// Loads --state if the file exists (a missing file is a fresh start).
static bool resumeStateIfPresent(FleetScheduler &Sched,
                                 const std::string &StateFile) {
  if (StateFile.empty())
    return true;
  struct stat St;
  if (::stat(StateFile.c_str(), &St) != 0)
    return true;
  std::string Err;
  if (!Sched.loadState(StateFile, &Err)) {
    std::printf("cannot resume from %s: %s\n", StateFile.c_str(), Err.c_str());
    return false;
  }
  std::printf("resumed %zu campaign(s) from %s\n", Sched.numCampaigns(),
              StateFile.c_str());
  return true;
}

/// The per-campaign triage table + summary shared by `fleet` and `collect`.
static void printFleetReport(const FleetReport &FR) {
  std::printf("%-18s %-22s %6s %7s %7s %-10s %s\n", "Signature", "BugId",
              "Occur", "#Consum", "Symbex", "Result", "TestCase");
  for (const Campaign &C : FR.Campaigns) {
    const char *Result = !C.Completed           ? "pending"
                         : C.Resumed            ? "resumed"
                         : C.Report.Success     ? "reproduced"
                                                : "failed";
    std::printf("%-18s %-22s %6llu %7u %6.2fs %-10s %s\n",
                C.Sig.hex().c_str(), C.BugId.c_str(),
                (unsigned long long)C.Occurrences, C.Report.Occurrences,
                C.Report.TotalSymexSeconds, Result,
                C.Report.Success ? C.Report.TestCase.describe().c_str() : "-");
  }
  std::printf("\ncampaigns: %u run, %u resumed, %u reproduced; wall %.2fs "
              "(%u jobs)\n",
              FR.CampaignsRun, FR.CampaignsResumed, FR.Reproduced,
              FR.WallSeconds, FR.Jobs);
  std::printf("solver cache: %llu hits / %llu misses (%.1f%% hit rate), "
              "%llu entries, %llu evictions\n",
              (unsigned long long)FR.Cache.Hits,
              (unsigned long long)FR.Cache.Misses, 100.0 * FR.Cache.hitRate(),
              (unsigned long long)FR.Cache.Entries,
              (unsigned long long)FR.Cache.Evictions);
}

static int saveStateIfRequested(FleetScheduler &Sched,
                                const std::string &StateFile) {
  if (StateFile.empty())
    return 0;
  std::string Err;
  if (!Sched.saveState(StateFile, &Err)) {
    std::printf("cannot save state to %s: %s\n", StateFile.c_str(),
                Err.c_str());
    return 1;
  }
  std::printf("state saved to %s\n", StateFile.c_str());
  return 0;
}

//===----------------------------------------------------------------------===//
// gen: seeded bug-corpus synthesis (src/gen/, docs/WORKLOADS.md)
//===----------------------------------------------------------------------===//

static int cmdGen(int argc, char **argv) {
  gen::GenConfig GC;
  std::string OutDir;
  bool Check = false;
  TelemetryOptions Telemetry;

  for (int I = 2; I < argc; ++I) {
    auto NextArg = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::printf("%s needs a value\n", Flag);
        return nullptr;
      }
      return argv[++I];
    };
    if (int R = parseTelemetryArg(argc, argv, I, Telemetry)) {
      if (R < 0)
        return 2;
    } else if (!std::strcmp(argv[I], "--seed")) {
      const char *V = NextArg("--seed");
      if (!V)
        return 2;
      GC.Seed = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(argv[I], "--count")) {
      const char *V = NextArg("--count");
      if (!V)
        return 2;
      GC.Count = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (!std::strcmp(argv[I], "--out")) {
      const char *V = NextArg("--out");
      if (!V)
        return 2;
      OutDir = V;
    } else if (!std::strcmp(argv[I], "--classes")) {
      const char *V = NextArg("--classes");
      if (!V)
        return 2;
      std::vector<std::string> Tags;
      splitBugList(V, Tags);
      GC.ClassMask = 0;
      for (const std::string &T : Tags) {
        gen::BugClass C;
        if (!gen::parseBugClassTag(T, C)) {
          std::printf("unknown bug class '%s'\n", T.c_str());
          return 2;
        }
        GC.ClassMask |= 1u << static_cast<unsigned>(C);
      }
      if (GC.ClassMask == 0) {
        std::printf("--classes selected no classes\n");
        return 2;
      }
    } else if (!std::strcmp(argv[I], "--check")) {
      Check = true;
    } else {
      std::printf("unknown gen option '%s'\n", argv[I]);
      return 2;
    }
  }

  Telemetry.enableTracing();
  std::vector<gen::GeneratedCampaign> Corpus = gen::generateCorpus(GC);

  unsigned PerClass[gen::NumBugClasses] = {};
  unsigned Concurrency = 0;
  uint64_t SourceBytes = 0;
  for (const auto &C : Corpus) {
    ++PerClass[static_cast<unsigned>(C.Class)];
    if (C.Multithreaded)
      ++Concurrency;
    SourceBytes += C.Source.size();
  }
  unsigned ClassesSpanned = 0;
  for (unsigned N : PerClass)
    if (N)
      ++ClassesSpanned;
  std::printf("generated %zu campaign(s) from seed %llu: %u class(es), "
              "%u concurrency, %llu source bytes\n",
              Corpus.size(), (unsigned long long)GC.Seed, ClassesSpanned,
              Concurrency, (unsigned long long)SourceBytes);
  for (unsigned I = 0; I < gen::NumBugClasses; ++I)
    if (PerClass[I])
      std::printf("  %-8s %-26s %4u campaign(s)\n",
                  gen::bugClassTag(static_cast<gen::BugClass>(I)),
                  gen::bugClassName(static_cast<gen::BugClass>(I)),
                  PerClass[I]);

  if (Check) {
    // Determinism: a second generation must serialize byte-identically,
    // and every campaign must survive a parse round-trip.
    std::vector<gen::GeneratedCampaign> Again = gen::generateCorpus(GC);
    for (size_t I = 0; I < Corpus.size(); ++I) {
      std::string A = gen::serializeCampaign(Corpus[I]);
      if (A != gen::serializeCampaign(Again[I])) {
        std::printf("check FAILED: campaign %zu not deterministic\n", I);
        return 1;
      }
      gen::GeneratedCampaign RT;
      std::string Err;
      if (!gen::parseCampaign(A, RT, Err) ||
          gen::serializeCampaign(RT) != A) {
        std::printf("check FAILED: campaign %s round-trip: %s\n",
                    Corpus[I].Id.c_str(), Err.c_str());
        return 1;
      }
    }
    std::printf("check passed: deterministic, round-trips\n");
  }

  if (!OutDir.empty()) {
    std::string Err = gen::writeCorpus(OutDir, Corpus);
    if (!Err.empty()) {
      std::printf("cannot write corpus: %s\n", Err.c_str());
      return 1;
    }
    std::printf("corpus written to %s (%zu files + MANIFEST)\n",
                OutDir.c_str(), Corpus.size());
  }
  return Telemetry.exportAll();
}

static int cmdFleet(int argc, char **argv) {
  FleetConfig FC;
  unsigned Machines = 3, RunsPerMachine = 400;
  std::string StateFile, CorpusDir;
  std::vector<std::string> BugIds;
  TelemetryOptions Telemetry;

  for (int I = 2; I < argc; ++I) {
    auto NextArg = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::printf("%s needs a value\n", Flag);
        return nullptr;
      }
      return argv[++I];
    };
    if (int R = parseTelemetryArg(argc, argv, I, Telemetry)) {
      if (R < 0)
        return 2;
    } else if (!std::strcmp(argv[I], "--jobs")) {
      const char *V = NextArg("--jobs");
      if (!V)
        return 2;
      FC.Jobs = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (!std::strcmp(argv[I], "--seed")) {
      const char *V = NextArg("--seed");
      if (!V)
        return 2;
      FC.RootSeed = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(argv[I], "--machines")) {
      const char *V = NextArg("--machines");
      if (!V)
        return 2;
      Machines = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (!std::strcmp(argv[I], "--runs")) {
      const char *V = NextArg("--runs");
      if (!V)
        return 2;
      RunsPerMachine = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (!std::strcmp(argv[I], "--state")) {
      const char *V = NextArg("--state");
      if (!V)
        return 2;
      StateFile = V;
    } else if (!std::strcmp(argv[I], "--corpus")) {
      const char *V = NextArg("--corpus");
      if (!V)
        return 2;
      CorpusDir = V;
    } else if (!std::strcmp(argv[I], "--bugs")) {
      const char *V = NextArg("--bugs");
      if (!V)
        return 2;
      splitBugList(V, BugIds);
    } else {
      std::printf("unknown fleet option '%s'\n", argv[I]);
      return 2;
    }
  }

  std::vector<const BugSpec *> Corpus;
  if (!CorpusDir.empty()) {
    // Generated-corpus intake: register the batch so campaign BugIds
    // resolve through findBug like hand-built workloads, then (absent a
    // --bugs filter) make the batch the workload set.
    std::string Err;
    std::vector<gen::GeneratedCampaign> Loaded =
        gen::loadCorpus(CorpusDir, Err);
    if (Loaded.empty()) {
      std::printf("cannot load corpus from %s: %s\n", CorpusDir.c_str(),
                  Err.c_str());
      return 1;
    }
    std::vector<BugSpec> Specs;
    Specs.reserve(Loaded.size());
    for (const auto &C : Loaded)
      Specs.push_back(gen::toBugSpec(C));
    registerGeneratedSpecs(std::move(Specs));
    std::printf("loaded %zu generated campaign(s) from %s\n", Loaded.size(),
                CorpusDir.c_str());
    if (BugIds.empty())
      for (const auto &S : generatedBugSpecs())
        Corpus.push_back(&S);
  }
  if (Corpus.empty() && !resolveCorpus(BugIds, Corpus))
    return 2;

  Telemetry.enableTracing();
  FleetScheduler Sched(FC);
  if (!resumeStateIfPresent(Sched, StateFile))
    return 1;

  std::printf("harvesting: %u machine(s) x %u run(s) x %zu workload(s)...\n",
              Machines, RunsPerMachine, Corpus.size());
  unsigned Observed = 0;
  for (unsigned Machine = 0; Machine < Machines; ++Machine)
    for (const BugSpec *Spec : Corpus)
      Observed += Sched.harvest(*Spec, RunsPerMachine, Machine);
  std::printf("observed %u failure occurrence(s) in %zu bucket(s)\n\n",
              Observed, Sched.numCampaigns());

  FleetReport FR = Sched.run();
  printFleetReport(FR);
  if (int Rc = saveStateIfRequested(Sched, StateFile))
    return Rc;
  return Telemetry.exportAll();
}

static int cmdReport(int argc, char **argv) {
  std::string SpoolDir, PushUrl;
  uint64_t MachineId = 0, RootSeed = 20260807, FirstSeq = 1;
  uint64_t TimeoutMs = 5000;
  bool HaveMachine = false;
  unsigned Runs = 400;
  std::vector<std::string> BugIds;

  for (int I = 2; I < argc; ++I) {
    auto NextArg = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::printf("%s needs a value\n", Flag);
        return nullptr;
      }
      return argv[++I];
    };
    const char *V = nullptr;
    if (!std::strcmp(argv[I], "--spool")) {
      if (!(V = NextArg("--spool")))
        return 2;
      SpoolDir = V;
    } else if (!std::strcmp(argv[I], "--push")) {
      if (!(V = NextArg("--push")))
        return 2;
      PushUrl = V;
    } else if (!std::strcmp(argv[I], "--timeout-ms")) {
      if (!(V = NextArg("--timeout-ms")))
        return 2;
      TimeoutMs = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(argv[I], "--machine")) {
      if (!(V = NextArg("--machine")))
        return 2;
      MachineId = std::strtoull(V, nullptr, 10);
      HaveMachine = true;
    } else if (!std::strcmp(argv[I], "--runs")) {
      if (!(V = NextArg("--runs")))
        return 2;
      Runs = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (!std::strcmp(argv[I], "--seed")) {
      if (!(V = NextArg("--seed")))
        return 2;
      RootSeed = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(argv[I], "--first-seq")) {
      if (!(V = NextArg("--first-seq")))
        return 2;
      FirstSeq = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(argv[I], "--bugs")) {
      if (!(V = NextArg("--bugs")))
        return 2;
      splitBugList(V, BugIds);
    } else {
      std::printf("unknown report option '%s'\n", argv[I]);
      return 2;
    }
  }
  if ((SpoolDir.empty() == PushUrl.empty()) || !HaveMachine) {
    std::printf(
        "report needs --machine ID and exactly one of --spool DIR or "
        "--push URL\n");
    return 2;
  }

  std::vector<const BugSpec *> Corpus;
  if (!resolveCorpus(BugIds, Corpus))
    return 2;

  // Exactly the in-process harvest loop, with the spool as the sink: one
  // published file (or one uploaded frame) per workload that observed at
  // least one failure. The wire path ships the byte-identical frame a
  // flush would have renamed into place, so the collector cannot tell
  // the transports apart.
  SpoolWriter Writer(SpoolDir, MachineId, FirstSeq);
  net::ReportClientConfig Push;
  Push.TimeoutMs = TimeoutMs;
  Push.JitterSeed = MachineId + 1;
  unsigned Observed = 0, Pushed = 0;
  for (const BugSpec *Spec : Corpus) {
    Observed += simulateMachine(
        *Spec, Runs, MachineId, RootSeed, VmConfig(),
        [&](const FleetFailureReport &R) { Writer.append(R); },
        Writer.nextSequence());
    if (!PushUrl.empty()) {
      std::string Frame = Writer.takeFrame();
      if (Frame.empty())
        continue;
      net::PushResult PR = net::pushReportUrl(PushUrl, Frame, Push);
      if (!PR.Ok) {
        std::printf("cannot push to %s: %s\n", PushUrl.c_str(),
                    PR.Error.c_str());
        return 1;
      }
      ++Pushed;
      continue;
    }
    std::string Err;
    if (!Writer.flush(&Err)) {
      std::printf("cannot write spool: %s\n", Err.c_str());
      return 1;
    }
  }
  if (!PushUrl.empty())
    std::printf("machine %llu: observed %u failure(s) over %u run(s) x %zu "
                "workload(s); pushed %u frame(s) to %s (next seq %llu)\n",
                (unsigned long long)MachineId, Observed, Runs, Corpus.size(),
                Pushed, PushUrl.c_str(),
                (unsigned long long)Writer.nextSequence());
  else
    std::printf("machine %llu: observed %u failure(s) over %u run(s) x %zu "
                "workload(s); spooled to %s (next seq %llu)\n",
                (unsigned long long)MachineId, Observed, Runs, Corpus.size(),
                SpoolDir.c_str(), (unsigned long long)Writer.nextSequence());
  return 0;
}

/// `pushfleet`: M simulated machines feed one daemon over localhost,
/// --jobs at a time — the concurrent end-to-end exerciser for the wire
/// ingestion path (each pusher thread owns disjoint machines; all the
/// shared state is a handful of atomics).
static int cmdPushfleet(int argc, char **argv) {
  std::string Url;
  uint64_t RootSeed = 20260807, TimeoutMs = 5000;
  unsigned Machines = 3, Jobs = 2, Runs = 400, PushRetries = 5;
  std::vector<std::string> BugIds;

  for (int I = 2; I < argc; ++I) {
    auto NextArg = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::printf("%s needs a value\n", Flag);
        return nullptr;
      }
      return argv[++I];
    };
    const char *V = nullptr;
    if (!std::strcmp(argv[I], "--url")) {
      if (!(V = NextArg("--url")))
        return 2;
      Url = V;
    } else if (!std::strcmp(argv[I], "--machines")) {
      if (!(V = NextArg("--machines")))
        return 2;
      Machines = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (!std::strcmp(argv[I], "--jobs")) {
      if (!(V = NextArg("--jobs")))
        return 2;
      Jobs = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (!std::strcmp(argv[I], "--runs")) {
      if (!(V = NextArg("--runs")))
        return 2;
      Runs = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (!std::strcmp(argv[I], "--seed")) {
      if (!(V = NextArg("--seed")))
        return 2;
      RootSeed = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(argv[I], "--timeout-ms")) {
      if (!(V = NextArg("--timeout-ms")))
        return 2;
      TimeoutMs = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(argv[I], "--push-retries")) {
      if (!(V = NextArg("--push-retries")))
        return 2;
      PushRetries = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (!std::strcmp(argv[I], "--bugs")) {
      if (!(V = NextArg("--bugs")))
        return 2;
      splitBugList(V, BugIds);
    } else {
      std::printf("unknown pushfleet option '%s'\n", argv[I]);
      return 2;
    }
  }
  if (Url.empty()) {
    std::printf("pushfleet needs --url URL\n");
    return 2;
  }
  std::vector<const BugSpec *> Corpus;
  if (!resolveCorpus(BugIds, Corpus))
    return 2;
  Jobs = std::max(1u, std::min(Jobs, std::max(1u, Machines)));

  std::atomic<unsigned> Observed{0}, Frames{0}, Attempts{0}, Throttled{0};
  std::atomic<bool> Failed{false};
  std::mutex PrintMu;
  auto Pusher = [&](unsigned First) {
    for (unsigned Machine = First; Machine < Machines; Machine += Jobs) {
      SpoolWriter Writer("", Machine, 1);
      net::ReportClientConfig Push;
      Push.TimeoutMs = TimeoutMs;
      Push.MaxRetries = PushRetries;
      Push.JitterSeed = Machine + 1;
      for (const BugSpec *Spec : Corpus) {
        Observed += simulateMachine(
            *Spec, Runs, Machine, RootSeed, VmConfig(),
            [&](const FleetFailureReport &R) { Writer.append(R); },
            Writer.nextSequence());
        std::string Frame = Writer.takeFrame();
        if (Frame.empty())
          continue;
        net::PushResult PR = net::pushReportUrl(Url, Frame, Push);
        Attempts += PR.Attempts;
        Throttled += PR.Throttled;
        if (!PR.Ok) {
          std::lock_guard<std::mutex> Lock(PrintMu);
          std::printf("machine %u: push failed: %s\n", Machine,
                      PR.Error.c_str());
          Failed.store(true);
          return;
        }
        ++Frames;
      }
    }
  };
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < Jobs; ++T)
    Threads.emplace_back(Pusher, T);
  for (std::thread &T : Threads)
    T.join();

  std::printf("pushfleet: %u machine(s) x %u run(s) x %zu workload(s) over "
              "%u thread(s): %u failure(s) observed, %u frame(s) pushed to "
              "%s (%u attempt(s), %u throttled)\n",
              Machines, Runs, Corpus.size(), Jobs, Observed.load(),
              Frames.load(), Url.c_str(), Attempts.load(), Throttled.load());
  return Failed.load() ? 1 : 0;
}

/// The daemon the stop signals talk to. Signal handlers may only touch
/// async-signal-safe state; CollectorDaemon::requestStop is a relaxed
/// atomic store, so forwarding to it is safe.
static CollectorDaemon *volatile ActiveDaemon = nullptr;

static void handleStopSignal(int) {
  if (CollectorDaemon *D = ActiveDaemon)
    D->requestStop();
}

/// Shared by the one-shot and daemon collect paths.
static void printCollectorStats(const CollectorStats &CS,
                                const std::string &SpoolDir,
                                size_t Buckets) {
  std::printf("spool %s: %llu file(s) scanned, %llu claimed, %llu "
              "quarantined, %llu stale temp(s)\n",
              SpoolDir.c_str(), (unsigned long long)CS.FilesScanned,
              (unsigned long long)CS.FilesClaimed,
              (unsigned long long)CS.FilesQuarantined,
              (unsigned long long)CS.StaleTemps);
  if (CS.ClaimRetries || CS.ClaimFailures)
    std::printf("claims: %llu retry(ies), %llu left for a later drain after "
                "retries ran out\n",
                (unsigned long long)CS.ClaimRetries,
                (unsigned long long)CS.ClaimFailures);
  std::printf("records: %llu decoded, %llu duplicate(s) dropped, %llu shed "
              "by backpressure (%llu bucket(s) affected), %llu submitted "
              "into %zu bucket(s)\n\n",
              (unsigned long long)CS.RecordsDecoded,
              (unsigned long long)CS.DuplicatesDropped,
              (unsigned long long)CS.BackpressureDropped,
              (unsigned long long)CS.BucketsShed,
              (unsigned long long)CS.Submitted, Buckets);
}

static int runCollectDaemon(const DaemonConfig &DC, FleetScheduler &Sched,
                            const TelemetryOptions &Telemetry) {
  CollectorDaemon Daemon(DC, Sched);
  std::string Err;
  if (!Daemon.start(&Err)) {
    std::printf("cannot start daemon: %s\n", Err.c_str());
    return 1;
  }
  ActiveDaemon = &Daemon;
  std::signal(SIGINT, handleStopSignal);
  std::signal(SIGTERM, handleStopSignal);
  std::printf("daemon: draining %s every %llums (state %s)...\n",
              DC.Collector.SpoolDir.c_str(),
              (unsigned long long)DC.DrainIntervalMs,
              DC.StateFile.empty() ? "<none>" : DC.StateFile.c_str());
  if (Daemon.listenPort()) {
    // The bound port matters when --listen asked for :0 (ephemeral);
    // smoke tests grep this line to find it.
    std::string Host = "127.0.0.1";
    uint16_t Port = 0;
    net::parseHostPort(DC.Listen, Host, Port);
    std::printf("daemon: listening on %s:%u (/metrics /healthz /status; "
                "POST /report)\n",
                Host.c_str(), (unsigned)Daemon.listenPort());
  }
  // Smoke tests grep the banner for the ephemeral port while the daemon
  // is still running; stdout is fully buffered when redirected to a file.
  std::fflush(stdout);

  bool Ok = Daemon.runLoop(&Err);
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  ActiveDaemon = nullptr;
  if (!Ok)
    std::printf("daemon stopped on error: %s\n", Err.c_str());

  const DaemonStats &DS = Daemon.getStats();
  std::printf("\ndaemon: %llu cycle(s), %llu drain(s) (%llu retried, %llu "
              "failed), %llu step(s), %llu checkpoint(s) (%llu failed), "
              "%llu file(s) acked, %llu recovered; uptime %.2fs\n\n",
              (unsigned long long)DS.Cycles, (unsigned long long)DS.Drains,
              (unsigned long long)DS.DrainRetries,
              (unsigned long long)DS.DrainFailures,
              (unsigned long long)DS.StepsRun,
              (unsigned long long)DS.Checkpoints,
              (unsigned long long)DS.CheckpointFailures,
              (unsigned long long)DS.FilesAcked,
              (unsigned long long)DS.FilesRecovered,
              Daemon.uptimeNs() / 1e9);
  printCollectorStats(Daemon.collectorStats(), DC.Collector.SpoolDir,
                      Sched.numCampaigns());
  printFleetReport(Sched.snapshotReport());
  if (Sched.totalPreemptions())
    std::printf("preemptions: %llu (hot buckets displacing stalled "
                "campaigns)\n",
                (unsigned long long)Sched.totalPreemptions());
  int Rc = Telemetry.exportAll();
  return Ok ? Rc : 1;
}

static int cmdCollect(int argc, char **argv) {
  FleetConfig FC;
  CollectorConfig CC;
  DaemonConfig DC;
  bool Daemon = false;
  std::string StateFile;
  TelemetryOptions Telemetry;

  for (int I = 2; I < argc; ++I) {
    auto NextArg = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::printf("%s needs a value\n", Flag);
        return nullptr;
      }
      return argv[++I];
    };
    const char *V = nullptr;
    if (int R = parseTelemetryArg(argc, argv, I, Telemetry)) {
      if (R < 0)
        return 2;
    } else if (!std::strcmp(argv[I], "--spool")) {
      if (!(V = NextArg("--spool")))
        return 2;
      CC.SpoolDir = V;
    } else if (!std::strcmp(argv[I], "--jobs")) {
      if (!(V = NextArg("--jobs")))
        return 2;
      FC.Jobs = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (!std::strcmp(argv[I], "--seed")) {
      if (!(V = NextArg("--seed")))
        return 2;
      FC.RootSeed = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(argv[I], "--state")) {
      if (!(V = NextArg("--state")))
        return 2;
      StateFile = V;
    } else if (!std::strcmp(argv[I], "--max-pending")) {
      if (!(V = NextArg("--max-pending")))
        return 2;
      CC.MaxPending = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(argv[I], "--keep-drained")) {
      CC.RemoveDrained = false;
    } else if (!std::strcmp(argv[I], "--daemon")) {
      Daemon = true;
    } else if (!std::strcmp(argv[I], "--interval-ms")) {
      if (!(V = NextArg("--interval-ms")))
        return 2;
      DC.DrainIntervalMs = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(argv[I], "--max-cycles")) {
      if (!(V = NextArg("--max-cycles")))
        return 2;
      DC.MaxCycles = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(argv[I], "--step-budget")) {
      if (!(V = NextArg("--step-budget")))
        return 2;
      DC.MaxStepsPerCycle = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (!std::strcmp(argv[I], "--retries")) {
      if (!(V = NextArg("--retries")))
        return 2;
      DC.MaxDrainRetries = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (!std::strcmp(argv[I], "--preempt-hot")) {
      if (!(V = NextArg("--preempt-hot")))
        return 2;
      FC.Preempt.Enabled = true;
      FC.Preempt.HotOccurrences = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(argv[I], "--listen")) {
      if (!(V = NextArg("--listen")))
        return 2;
      DC.Listen = V;
    } else if (!std::strcmp(argv[I], "--cycle-deadline-ms")) {
      if (!(V = NextArg("--cycle-deadline-ms")))
        return 2;
      DC.CycleDeadlineMs = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(argv[I], "--stall-dir")) {
      if (!(V = NextArg("--stall-dir")))
        return 2;
      DC.StallDiagDir = V;
    } else if (!std::strcmp(argv[I], "--metrics-every")) {
      if (!(V = NextArg("--metrics-every")))
        return 2;
      DC.MetricsEveryCycles = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(argv[I], "--metrics-json")) {
      if (!(V = NextArg("--metrics-json")))
        return 2;
      DC.MetricsJsonPath = V;
    } else if (!std::strcmp(argv[I], "--body-cap")) {
      if (!(V = NextArg("--body-cap")))
        return 2;
      DC.Http.MaxBodyBytes = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(argv[I], "--fixed-interval")) {
      DC.AdaptiveDrain = false;
    } else if (!std::strcmp(argv[I], "--min-interval-ms")) {
      if (!(V = NextArg("--min-interval-ms")))
        return 2;
      DC.MinDrainIntervalMs = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(argv[I], "--high-files")) {
      if (!(V = NextArg("--high-files")))
        return 2;
      DC.Pressure.HighFiles = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(argv[I], "--high-bytes")) {
      if (!(V = NextArg("--high-bytes")))
        return 2;
      DC.Pressure.HighBytes = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(argv[I], "--low-files")) {
      if (!(V = NextArg("--low-files")))
        return 2;
      DC.Pressure.LowFiles = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(argv[I], "--low-bytes")) {
      if (!(V = NextArg("--low-bytes")))
        return 2;
      DC.Pressure.LowBytes = std::strtoull(V, nullptr, 10);
    } else {
      std::printf("unknown collect option '%s'\n", argv[I]);
      return 2;
    }
  }
  if (CC.SpoolDir.empty()) {
    std::printf("collect needs --spool DIR\n");
    return 2;
  }

  // Scripted filesystem faults for soak/regression testing: every spool,
  // high-water, and checkpoint I/O goes through this decorator.
  std::unique_ptr<FaultFs> Faults;
  if (const char *Spec = std::getenv("ER_FAULT_SPEC")) {
    std::vector<Failpoint> Points;
    std::string SpecErr;
    if (!parseFaultSpec(Spec, Points, &SpecErr)) {
      std::printf("bad ER_FAULT_SPEC: %s\n", SpecErr.c_str());
      return 2;
    }
    Faults = std::make_unique<FaultFs>();
    for (const Failpoint &P : Points)
      Faults->addFailpoint(P);
    CC.Fs = Faults.get();
    std::printf("fault injection armed: %zu failpoint(s) from "
                "ER_FAULT_SPEC\n",
                Points.size());
  }

  Telemetry.enableTracing();
  FleetScheduler Sched(FC);

  if (Daemon) {
    // The daemon owns resume + checkpoint through its StateFile; do not
    // also load it here or the records would be double-counted.
    DC.Collector = CC;
    DC.StateFile = StateFile;
    int Rc = runCollectDaemon(DC, Sched, Telemetry);
    if (Faults && Faults->faultsInjected())
      std::printf("fault injection: %llu fault(s) fired\n",
                  (unsigned long long)Faults->faultsInjected());
    return Rc;
  }

  if (!resumeStateIfPresent(Sched, StateFile))
    return 1;

  ReportCollector Collector(CC);
  std::string Err;
  if (!Collector.drainInto(Sched, &Err)) {
    std::printf("cannot drain spool %s: %s\n", CC.SpoolDir.c_str(),
                Err.c_str());
    return 1;
  }
  printCollectorStats(Collector.getStats(), CC.SpoolDir,
                      Sched.numCampaigns());

  FleetReport FR = Sched.run();
  printFleetReport(FR);
  if (int Rc = saveStateIfRequested(Sched, StateFile))
    return Rc;
  return Telemetry.exportAll();
}

/// `stats`: run the fleet pipeline with span recording forced on, then
/// render the whole metric catalog and a per-phase time summary as text.
/// This is the operator's one-command view of where a reconstruction run
/// spends its time and what the pipeline counted along the way.
static int cmdStats(int argc, char **argv) {
  FleetConfig FC;
  unsigned Machines = 3, RunsPerMachine = 400;
  std::vector<std::string> BugIds;
  TelemetryOptions Telemetry;

  for (int I = 2; I < argc; ++I) {
    auto NextArg = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::printf("%s needs a value\n", Flag);
        return nullptr;
      }
      return argv[++I];
    };
    const char *V = nullptr;
    if (int R = parseTelemetryArg(argc, argv, I, Telemetry)) {
      if (R < 0)
        return 2;
    } else if (!std::strcmp(argv[I], "--jobs")) {
      if (!(V = NextArg("--jobs")))
        return 2;
      FC.Jobs = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (!std::strcmp(argv[I], "--seed")) {
      if (!(V = NextArg("--seed")))
        return 2;
      FC.RootSeed = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(argv[I], "--machines")) {
      if (!(V = NextArg("--machines")))
        return 2;
      Machines = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (!std::strcmp(argv[I], "--runs")) {
      if (!(V = NextArg("--runs")))
        return 2;
      RunsPerMachine = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (!std::strcmp(argv[I], "--bugs")) {
      if (!(V = NextArg("--bugs")))
        return 2;
      splitBugList(V, BugIds);
    } else {
      std::printf("unknown stats option '%s'\n", argv[I]);
      return 2;
    }
  }

  std::vector<const BugSpec *> Corpus;
  if (!resolveCorpus(BugIds, Corpus))
    return 2;

  Telemetry.enableTracing(/*Force=*/true);

  FleetScheduler Sched(FC);
  std::printf("harvesting: %u machine(s) x %u run(s) x %zu workload(s)...\n",
              Machines, RunsPerMachine, Corpus.size());
  unsigned Observed = 0;
  for (unsigned Machine = 0; Machine < Machines; ++Machine)
    for (const BugSpec *Spec : Corpus)
      Observed += Sched.harvest(*Spec, RunsPerMachine, Machine);
  FleetReport FR = Sched.run();
  std::printf("observed %u occurrence(s); %u campaign(s), %u reproduced; "
              "wall %.2fs (%u jobs)\n\n",
              Observed, FR.CampaignsRun, FR.Reproduced, FR.WallSeconds,
              FR.Jobs);

  auto Snap = obs::MetricsRegistry::global().snapshot();
  std::fputs(obs::renderMetricsTable(Snap).c_str(), stdout);
  std::fputs("\n", stdout);
  auto Spans = obs::PipelineTracer::global().snapshot();
  std::fputs(obs::renderSpanSummary(Spans).c_str(), stdout);
  uint64_t Dropped = obs::PipelineTracer::global().droppedSpans();
  if (Dropped)
    std::printf("\n(%llu span(s) dropped by the bounded ring)\n",
                (unsigned long long)Dropped);

  return Telemetry.exportAll();
}

/// Strict Prometheus text-exposition gate: CI scrapes /metrics into a
/// file and fails the build unless this accepts it. In-repo replacement
/// for promtool so the gate needs no network or extra install.
static int cmdPromcheck(int argc, char **argv) {
  if (argc < 3) {
    std::printf("promcheck needs a file or http://HOST:PORT/metrics URL\n");
    return 2;
  }
  std::string Text, Err;
  if (!std::strncmp(argv[2], "http://", 7)) {
    std::string Host, Path;
    uint16_t Port = 0;
    if (!net::parseHttpUrl(argv[2], Host, Port, Path, &Err)) {
      std::printf("promcheck: bad URL %s: %s\n", argv[2], Err.c_str());
      return 1;
    }
    net::HttpClientResponse Resp;
    if (!net::httpGet(Host, Port, Path, Resp, &Err, /*TimeoutMs=*/5000)) {
      std::printf("promcheck: cannot scrape %s: %s\n", argv[2], Err.c_str());
      return 1;
    }
    if (Resp.Status != 200) {
      std::printf("promcheck: %s: HTTP %d\n", argv[2], Resp.Status);
      return 1;
    }
    Text = Resp.Body;
  } else {
    std::vector<uint8_t> Bytes;
    if (FsOps::real().readFile(argv[2], Bytes, &Err) != FsStatus::Ok) {
      std::printf("promcheck: cannot read %s: %s\n", argv[2], Err.c_str());
      return 1;
    }
    Text.assign(Bytes.begin(), Bytes.end());
  }
  if (!obs::promValidateExposition(Text, &Err)) {
    std::printf("promcheck: %s: INVALID: %s\n", argv[2], Err.c_str());
    return 1;
  }
  std::printf("promcheck: %s: ok (%zu byte(s))\n", argv[2], Text.size());
  return 0;
}

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();
  if (!std::strcmp(argv[1], "list"))
    return cmdList();
  if (!std::strcmp(argv[1], "promcheck"))
    return cmdPromcheck(argc, argv);
  if (!std::strcmp(argv[1], "gen"))
    return cmdGen(argc, argv);
  if (!std::strcmp(argv[1], "fleet"))
    return cmdFleet(argc, argv);
  if (!std::strcmp(argv[1], "pushfleet"))
    return cmdPushfleet(argc, argv);
  if (!std::strcmp(argv[1], "report"))
    return cmdReport(argc, argv);
  if (!std::strcmp(argv[1], "collect"))
    return cmdCollect(argc, argv);
  if (!std::strcmp(argv[1], "stats"))
    return cmdStats(argc, argv);
  if (argc >= 3) {
    const BugSpec *Spec = findBug(argv[2]);
    if (!Spec) {
      std::printf("unknown bug id '%s' (try: er_cli list)\n", argv[2]);
      return 2;
    }
    if (!std::strcmp(argv[1], "run")) {
      // run <BugId> [seed] [telemetry flags] — the seed stays positional
      // for compatibility with existing scripts.
      uint64_t Seed = 20260706;
      int I = 3;
      if (I < argc && std::strncmp(argv[I], "--", 2) != 0)
        Seed = std::strtoull(argv[I++], nullptr, 10);
      TelemetryOptions Telemetry;
      for (; I < argc; ++I) {
        int R = parseTelemetryArg(argc, argv, I, Telemetry);
        if (R < 0)
          return 2;
        if (R == 0) {
          std::printf("unknown run option '%s'\n", argv[I]);
          return 2;
        }
      }
      return cmdRun(*Spec, Seed, Telemetry);
    }
    if (!std::strcmp(argv[1], "trace"))
      return cmdTrace(*Spec);
  }
  return usage();
}
