//===- er_cli.cpp - Command-line front end over the bug corpus --------------------===//
//
// A small operator tool over the library:
//
//   er_cli list                 show the 13 evaluation bugs
//   er_cli run <BugId> [seed]   run the full ER loop on one bug
//   er_cli trace <BugId>        show trace statistics for one failing run
//
// Build & run:  ./build/examples/er_cli list
//
//===----------------------------------------------------------------------===//

#include "er/Driver.h"
#include "support/Rng.h"
#include "trace/OverheadModel.h"
#include "vm/Interpreter.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace er;

static int usage() {
  std::printf("usage: er_cli list\n"
              "       er_cli run <BugId> [seed]\n"
              "       er_cli trace <BugId>\n");
  return 2;
}

static int cmdList() {
  std::printf("%-22s %-34s %-28s %s\n", "BugId", "Application", "Bug type",
              "MT");
  for (const auto &S : allBugSpecs())
    std::printf("%-22s %-34s %-28s %s\n", S.Id.c_str(), S.App.c_str(),
                S.BugType.c_str(), S.Multithreaded ? "yes" : "no");
  return 0;
}

static int cmdRun(const BugSpec &Spec, uint64_t Seed) {
  auto M = compileBug(Spec);
  DriverConfig DC;
  DC.Solver.WorkBudget = Spec.SolverWorkBudget;
  DC.Vm.ChunkSize = Spec.VmChunkSize;
  DC.Seed = Seed;
  ReconstructionDriver Driver(*M, DC);
  ReconstructionReport Report =
      Driver.reconstruct([&](Rng &R) { return Spec.ProductionInput(R); });

  std::printf("bug:          %s (%s)\n", Spec.Id.c_str(), Spec.App.c_str());
  if (!Report.Success) {
    std::printf("result:       FAILED — %s\n", Report.FailureDetail.c_str());
    return 1;
  }
  std::printf("result:       reproduced\n");
  std::printf("failure:      %s\n", Report.Failure.describe().c_str());
  std::printf("occurrences:  %u\n", Report.Occurrences);
  std::printf("symbex time:  %.2fs\n", Report.TotalSymexSeconds);
  std::printf("test case:    %s (schedule seed %llu)\n",
              Report.TestCase.describe().c_str(),
              (unsigned long long)Report.ReplayScheduleSeed);
  for (size_t I = 0; I < Report.Iterations.size(); ++I) {
    const IterationReport &IR = Report.Iterations[I];
    std::printf("  iteration %zu: %-12s +%u recorded values "
                "(%u sites total), trace %llu bytes, symbex %.2fs\n",
                I + 1, symexStatusName(IR.Status), IR.NewRecordedValues,
                IR.TotalInstrumentationSites,
                (unsigned long long)IR.Trace.BytesWritten, IR.SymexSeconds);
  }

  VmConfig VC;
  VC.ChunkSize = Spec.VmChunkSize;
  VC.ScheduleSeed = Report.ReplayScheduleSeed;
  Interpreter VM(*M, VC);
  RunResult RR = VM.run(Report.TestCase);
  std::printf("replay:       %s\n",
              RR.Status == ExitStatus::Failure ? RR.Failure.describe().c_str()
                                               : "no failure (BUG)");
  return 0;
}

static int cmdTrace(const BugSpec &Spec) {
  auto M = compileBug(Spec);
  Rng R(1);
  VmConfig VC;
  VC.ChunkSize = Spec.VmChunkSize;
  for (int Tries = 0; Tries < 5000; ++Tries) {
    ProgramInput In = Spec.ProductionInput(R);
    VC.ScheduleSeed = R.next();
    TraceConfig TC;
    TraceRecorder Rec(TC);
    Interpreter VM(*M, VC);
    RunResult RR = VM.run(In, &Rec);
    if (RR.Status != ExitStatus::Failure)
      continue;
    const TraceStats &TS = Rec.getStats();
    std::printf("failing run:  %llu instructions, %llu threads\n",
                (unsigned long long)RR.InstrCount,
                (unsigned long long)RR.NumThreads);
    std::printf("trace:        %llu bytes (%llu TNT, %llu TIP, %llu chunk, "
                "%llu PTW packets)\n",
                (unsigned long long)TS.BytesWritten,
                (unsigned long long)TS.TntPackets,
                (unsigned long long)TS.TipPackets,
                (unsigned long long)TS.ChunkPackets,
                (unsigned long long)TS.PtwPackets);
    OverheadParams P;
    std::printf("modelled recording overhead: %.3f%%\n",
                erOverheadPercentExact(RR.InstrCount, TS, P));
    return 0;
  }
  std::printf("no failing run found\n");
  return 1;
}

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();
  if (!std::strcmp(argv[1], "list"))
    return cmdList();
  if (argc >= 3) {
    const BugSpec *Spec = findBug(argv[2]);
    if (!Spec) {
      std::printf("unknown bug id '%s' (try: er_cli list)\n", argv[2]);
      return 2;
    }
    if (!std::strcmp(argv[1], "run"))
      return cmdRun(*Spec, argc >= 4 ? std::strtoull(argv[3], nullptr, 10)
                                     : 20260706);
    if (!std::strcmp(argv[1], "trace"))
      return cmdTrace(*Spec);
  }
  return usage();
}
