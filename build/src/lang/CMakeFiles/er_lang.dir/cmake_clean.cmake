file(REMOVE_RECURSE
  "CMakeFiles/er_lang.dir/Ast.cpp.o"
  "CMakeFiles/er_lang.dir/Ast.cpp.o.d"
  "CMakeFiles/er_lang.dir/Codegen.cpp.o"
  "CMakeFiles/er_lang.dir/Codegen.cpp.o.d"
  "CMakeFiles/er_lang.dir/Lexer.cpp.o"
  "CMakeFiles/er_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/er_lang.dir/Parser.cpp.o"
  "CMakeFiles/er_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/er_lang.dir/Sema.cpp.o"
  "CMakeFiles/er_lang.dir/Sema.cpp.o.d"
  "liber_lang.a"
  "liber_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/er_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
