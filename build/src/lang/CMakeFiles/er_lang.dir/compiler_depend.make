# Empty compiler generated dependencies file for er_lang.
# This may be replaced when dependencies are built.
