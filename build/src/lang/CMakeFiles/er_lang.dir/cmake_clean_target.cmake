file(REMOVE_RECURSE
  "liber_lang.a"
)
