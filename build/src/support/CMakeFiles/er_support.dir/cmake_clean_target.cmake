file(REMOVE_RECURSE
  "liber_support.a"
)
