file(REMOVE_RECURSE
  "CMakeFiles/er_support.dir/Error.cpp.o"
  "CMakeFiles/er_support.dir/Error.cpp.o.d"
  "CMakeFiles/er_support.dir/Format.cpp.o"
  "CMakeFiles/er_support.dir/Format.cpp.o.d"
  "CMakeFiles/er_support.dir/Rng.cpp.o"
  "CMakeFiles/er_support.dir/Rng.cpp.o.d"
  "CMakeFiles/er_support.dir/Timer.cpp.o"
  "CMakeFiles/er_support.dir/Timer.cpp.o.d"
  "liber_support.a"
  "liber_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/er_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
