# Empty compiler generated dependencies file for er_support.
# This may be replaced when dependencies are built.
