file(REMOVE_RECURSE
  "liber_symex.a"
)
