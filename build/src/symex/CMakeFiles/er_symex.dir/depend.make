# Empty dependencies file for er_symex.
# This may be replaced when dependencies are built.
