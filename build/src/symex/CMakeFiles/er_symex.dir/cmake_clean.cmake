file(REMOVE_RECURSE
  "CMakeFiles/er_symex.dir/SymExecutor.cpp.o"
  "CMakeFiles/er_symex.dir/SymExecutor.cpp.o.d"
  "liber_symex.a"
  "liber_symex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/er_symex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
