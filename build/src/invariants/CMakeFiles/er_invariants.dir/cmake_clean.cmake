file(REMOVE_RECURSE
  "CMakeFiles/er_invariants.dir/Invariants.cpp.o"
  "CMakeFiles/er_invariants.dir/Invariants.cpp.o.d"
  "liber_invariants.a"
  "liber_invariants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/er_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
