file(REMOVE_RECURSE
  "liber_invariants.a"
)
