# Empty compiler generated dependencies file for er_invariants.
# This may be replaced when dependencies are built.
