file(REMOVE_RECURSE
  "CMakeFiles/er_ir.dir/Builder.cpp.o"
  "CMakeFiles/er_ir.dir/Builder.cpp.o.d"
  "CMakeFiles/er_ir.dir/IR.cpp.o"
  "CMakeFiles/er_ir.dir/IR.cpp.o.d"
  "CMakeFiles/er_ir.dir/Optimize.cpp.o"
  "CMakeFiles/er_ir.dir/Optimize.cpp.o.d"
  "CMakeFiles/er_ir.dir/Printer.cpp.o"
  "CMakeFiles/er_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/er_ir.dir/Verifier.cpp.o"
  "CMakeFiles/er_ir.dir/Verifier.cpp.o.d"
  "liber_ir.a"
  "liber_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/er_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
