file(REMOVE_RECURSE
  "liber_ir.a"
)
