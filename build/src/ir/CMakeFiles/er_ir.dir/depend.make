# Empty dependencies file for er_ir.
# This may be replaced when dependencies are built.
