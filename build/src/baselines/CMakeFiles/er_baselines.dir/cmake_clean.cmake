file(REMOVE_RECURSE
  "CMakeFiles/er_baselines.dir/RecordReplay.cpp.o"
  "CMakeFiles/er_baselines.dir/RecordReplay.cpp.o.d"
  "CMakeFiles/er_baselines.dir/ReptRecovery.cpp.o"
  "CMakeFiles/er_baselines.dir/ReptRecovery.cpp.o.d"
  "liber_baselines.a"
  "liber_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/er_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
