file(REMOVE_RECURSE
  "liber_baselines.a"
)
