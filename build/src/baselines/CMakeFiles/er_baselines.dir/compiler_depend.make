# Empty compiler generated dependencies file for er_baselines.
# This may be replaced when dependencies are built.
