file(REMOVE_RECURSE
  "CMakeFiles/er_workloads.dir/BinToolBugs.cpp.o"
  "CMakeFiles/er_workloads.dir/BinToolBugs.cpp.o.d"
  "CMakeFiles/er_workloads.dir/ConcurrencyBugs.cpp.o"
  "CMakeFiles/er_workloads.dir/ConcurrencyBugs.cpp.o.d"
  "CMakeFiles/er_workloads.dir/PhpBugs.cpp.o"
  "CMakeFiles/er_workloads.dir/PhpBugs.cpp.o.d"
  "CMakeFiles/er_workloads.dir/Registry.cpp.o"
  "CMakeFiles/er_workloads.dir/Registry.cpp.o.d"
  "CMakeFiles/er_workloads.dir/ServerBugs.cpp.o"
  "CMakeFiles/er_workloads.dir/ServerBugs.cpp.o.d"
  "CMakeFiles/er_workloads.dir/SqliteBugs.cpp.o"
  "CMakeFiles/er_workloads.dir/SqliteBugs.cpp.o.d"
  "liber_workloads.a"
  "liber_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/er_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
