file(REMOVE_RECURSE
  "liber_workloads.a"
)
