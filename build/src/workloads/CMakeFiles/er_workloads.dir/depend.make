# Empty dependencies file for er_workloads.
# This may be replaced when dependencies are built.
