
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/BinToolBugs.cpp" "src/workloads/CMakeFiles/er_workloads.dir/BinToolBugs.cpp.o" "gcc" "src/workloads/CMakeFiles/er_workloads.dir/BinToolBugs.cpp.o.d"
  "/root/repo/src/workloads/ConcurrencyBugs.cpp" "src/workloads/CMakeFiles/er_workloads.dir/ConcurrencyBugs.cpp.o" "gcc" "src/workloads/CMakeFiles/er_workloads.dir/ConcurrencyBugs.cpp.o.d"
  "/root/repo/src/workloads/PhpBugs.cpp" "src/workloads/CMakeFiles/er_workloads.dir/PhpBugs.cpp.o" "gcc" "src/workloads/CMakeFiles/er_workloads.dir/PhpBugs.cpp.o.d"
  "/root/repo/src/workloads/Registry.cpp" "src/workloads/CMakeFiles/er_workloads.dir/Registry.cpp.o" "gcc" "src/workloads/CMakeFiles/er_workloads.dir/Registry.cpp.o.d"
  "/root/repo/src/workloads/ServerBugs.cpp" "src/workloads/CMakeFiles/er_workloads.dir/ServerBugs.cpp.o" "gcc" "src/workloads/CMakeFiles/er_workloads.dir/ServerBugs.cpp.o.d"
  "/root/repo/src/workloads/SqliteBugs.cpp" "src/workloads/CMakeFiles/er_workloads.dir/SqliteBugs.cpp.o" "gcc" "src/workloads/CMakeFiles/er_workloads.dir/SqliteBugs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/er_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/er_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/er_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/er_support.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/er_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/er_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
