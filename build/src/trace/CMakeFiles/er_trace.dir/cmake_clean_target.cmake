file(REMOVE_RECURSE
  "liber_trace.a"
)
