file(REMOVE_RECURSE
  "CMakeFiles/er_trace.dir/OverheadModel.cpp.o"
  "CMakeFiles/er_trace.dir/OverheadModel.cpp.o.d"
  "CMakeFiles/er_trace.dir/Trace.cpp.o"
  "CMakeFiles/er_trace.dir/Trace.cpp.o.d"
  "liber_trace.a"
  "liber_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/er_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
