# Empty dependencies file for er_trace.
# This may be replaced when dependencies are built.
