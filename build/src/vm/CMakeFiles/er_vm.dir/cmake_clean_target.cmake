file(REMOVE_RECURSE
  "liber_vm.a"
)
