file(REMOVE_RECURSE
  "CMakeFiles/er_vm.dir/Interpreter.cpp.o"
  "CMakeFiles/er_vm.dir/Interpreter.cpp.o.d"
  "CMakeFiles/er_vm.dir/Memory.cpp.o"
  "CMakeFiles/er_vm.dir/Memory.cpp.o.d"
  "liber_vm.a"
  "liber_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/er_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
