# Empty compiler generated dependencies file for er_vm.
# This may be replaced when dependencies are built.
