# Empty dependencies file for er_solver.
# This may be replaced when dependencies are built.
