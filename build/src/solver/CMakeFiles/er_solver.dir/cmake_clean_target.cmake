file(REMOVE_RECURSE
  "liber_solver.a"
)
