file(REMOVE_RECURSE
  "CMakeFiles/er_solver.dir/BitBlaster.cpp.o"
  "CMakeFiles/er_solver.dir/BitBlaster.cpp.o.d"
  "CMakeFiles/er_solver.dir/Expr.cpp.o"
  "CMakeFiles/er_solver.dir/Expr.cpp.o.d"
  "CMakeFiles/er_solver.dir/Sat.cpp.o"
  "CMakeFiles/er_solver.dir/Sat.cpp.o.d"
  "CMakeFiles/er_solver.dir/Solver.cpp.o"
  "CMakeFiles/er_solver.dir/Solver.cpp.o.d"
  "liber_solver.a"
  "liber_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/er_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
