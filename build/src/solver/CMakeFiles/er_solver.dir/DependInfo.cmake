
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/BitBlaster.cpp" "src/solver/CMakeFiles/er_solver.dir/BitBlaster.cpp.o" "gcc" "src/solver/CMakeFiles/er_solver.dir/BitBlaster.cpp.o.d"
  "/root/repo/src/solver/Expr.cpp" "src/solver/CMakeFiles/er_solver.dir/Expr.cpp.o" "gcc" "src/solver/CMakeFiles/er_solver.dir/Expr.cpp.o.d"
  "/root/repo/src/solver/Sat.cpp" "src/solver/CMakeFiles/er_solver.dir/Sat.cpp.o" "gcc" "src/solver/CMakeFiles/er_solver.dir/Sat.cpp.o.d"
  "/root/repo/src/solver/Solver.cpp" "src/solver/CMakeFiles/er_solver.dir/Solver.cpp.o" "gcc" "src/solver/CMakeFiles/er_solver.dir/Solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/er_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
