# Empty compiler generated dependencies file for er_core.
# This may be replaced when dependencies are built.
