file(REMOVE_RECURSE
  "CMakeFiles/er_core.dir/ConstraintGraph.cpp.o"
  "CMakeFiles/er_core.dir/ConstraintGraph.cpp.o.d"
  "CMakeFiles/er_core.dir/Driver.cpp.o"
  "CMakeFiles/er_core.dir/Driver.cpp.o.d"
  "CMakeFiles/er_core.dir/Instrumenter.cpp.o"
  "CMakeFiles/er_core.dir/Instrumenter.cpp.o.d"
  "CMakeFiles/er_core.dir/Selection.cpp.o"
  "CMakeFiles/er_core.dir/Selection.cpp.o.d"
  "liber_core.a"
  "liber_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/er_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
