file(REMOVE_RECURSE
  "liber_core.a"
)
