file(REMOVE_RECURSE
  "CMakeFiles/sql_reconstruction.dir/sql_reconstruction.cpp.o"
  "CMakeFiles/sql_reconstruction.dir/sql_reconstruction.cpp.o.d"
  "sql_reconstruction"
  "sql_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
