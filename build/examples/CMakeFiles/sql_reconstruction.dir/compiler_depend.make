# Empty compiler generated dependencies file for sql_reconstruction.
# This may be replaced when dependencies are built.
