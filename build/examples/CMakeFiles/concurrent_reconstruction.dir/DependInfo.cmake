
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/concurrent_reconstruction.cpp" "examples/CMakeFiles/concurrent_reconstruction.dir/concurrent_reconstruction.cpp.o" "gcc" "examples/CMakeFiles/concurrent_reconstruction.dir/concurrent_reconstruction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/er_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/er/CMakeFiles/er_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/er_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/invariants/CMakeFiles/er_invariants.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/er_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/symex/CMakeFiles/er_symex.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/er_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/er_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/er_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/er_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/er_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
