# Empty compiler generated dependencies file for concurrent_reconstruction.
# This may be replaced when dependencies are built.
