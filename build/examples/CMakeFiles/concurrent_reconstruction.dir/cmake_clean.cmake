file(REMOVE_RECURSE
  "CMakeFiles/concurrent_reconstruction.dir/concurrent_reconstruction.cpp.o"
  "CMakeFiles/concurrent_reconstruction.dir/concurrent_reconstruction.cpp.o.d"
  "concurrent_reconstruction"
  "concurrent_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
