# Empty compiler generated dependencies file for er_langc.
# This may be replaced when dependencies are built.
