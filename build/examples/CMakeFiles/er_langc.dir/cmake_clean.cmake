file(REMOVE_RECURSE
  "CMakeFiles/er_langc.dir/er_langc.cpp.o"
  "CMakeFiles/er_langc.dir/er_langc.cpp.o.d"
  "er_langc"
  "er_langc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/er_langc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
