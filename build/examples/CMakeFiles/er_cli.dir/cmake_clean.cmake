file(REMOVE_RECURSE
  "CMakeFiles/er_cli.dir/er_cli.cpp.o"
  "CMakeFiles/er_cli.dir/er_cli.cpp.o.d"
  "er_cli"
  "er_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/er_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
