file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_random.dir/bench_ablation_random.cpp.o"
  "CMakeFiles/bench_ablation_random.dir/bench_ablation_random.cpp.o.d"
  "bench_ablation_random"
  "bench_ablation_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
