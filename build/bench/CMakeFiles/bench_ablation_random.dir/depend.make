# Empty dependencies file for bench_ablation_random.
# This may be replaced when dependencies are built.
