file(REMOVE_RECURSE
  "CMakeFiles/bench_mimic_localization.dir/bench_mimic_localization.cpp.o"
  "CMakeFiles/bench_mimic_localization.dir/bench_mimic_localization.cpp.o.d"
  "bench_mimic_localization"
  "bench_mimic_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mimic_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
