# Empty dependencies file for bench_fig5_progress.
# This may be replaced when dependencies are built.
