file(REMOVE_RECURSE
  "CMakeFiles/bench_rept_accuracy.dir/bench_rept_accuracy.cpp.o"
  "CMakeFiles/bench_rept_accuracy.dir/bench_rept_accuracy.cpp.o.d"
  "bench_rept_accuracy"
  "bench_rept_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rept_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
