# Empty dependencies file for bench_rept_accuracy.
# This may be replaced when dependencies are built.
