# Empty compiler generated dependencies file for bench_fig1_spectra.
# This may be replaced when dependencies are built.
