file(REMOVE_RECURSE
  "CMakeFiles/bench_offline_cost.dir/bench_offline_cost.cpp.o"
  "CMakeFiles/bench_offline_cost.dir/bench_offline_cost.cpp.o.d"
  "bench_offline_cost"
  "bench_offline_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_offline_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
