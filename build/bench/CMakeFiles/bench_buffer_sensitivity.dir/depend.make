# Empty dependencies file for bench_buffer_sensitivity.
# This may be replaced when dependencies are built.
