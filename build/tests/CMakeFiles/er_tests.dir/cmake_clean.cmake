file(REMOVE_RECURSE
  "CMakeFiles/er_tests.dir/BaselinesTest.cpp.o"
  "CMakeFiles/er_tests.dir/BaselinesTest.cpp.o.d"
  "CMakeFiles/er_tests.dir/ErCoreTest.cpp.o"
  "CMakeFiles/er_tests.dir/ErCoreTest.cpp.o.d"
  "CMakeFiles/er_tests.dir/FuzzPipelineTest.cpp.o"
  "CMakeFiles/er_tests.dir/FuzzPipelineTest.cpp.o.d"
  "CMakeFiles/er_tests.dir/InvariantsTest.cpp.o"
  "CMakeFiles/er_tests.dir/InvariantsTest.cpp.o.d"
  "CMakeFiles/er_tests.dir/IrTraceTest.cpp.o"
  "CMakeFiles/er_tests.dir/IrTraceTest.cpp.o.d"
  "CMakeFiles/er_tests.dir/LangSemanticsTest.cpp.o"
  "CMakeFiles/er_tests.dir/LangSemanticsTest.cpp.o.d"
  "CMakeFiles/er_tests.dir/LangVmTest.cpp.o"
  "CMakeFiles/er_tests.dir/LangVmTest.cpp.o.d"
  "CMakeFiles/er_tests.dir/OptimizeTest.cpp.o"
  "CMakeFiles/er_tests.dir/OptimizeTest.cpp.o.d"
  "CMakeFiles/er_tests.dir/SolverTest.cpp.o"
  "CMakeFiles/er_tests.dir/SolverTest.cpp.o.d"
  "CMakeFiles/er_tests.dir/SymexTest.cpp.o"
  "CMakeFiles/er_tests.dir/SymexTest.cpp.o.d"
  "CMakeFiles/er_tests.dir/WorkloadsTest.cpp.o"
  "CMakeFiles/er_tests.dir/WorkloadsTest.cpp.o.d"
  "er_tests"
  "er_tests.pdb"
  "er_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/er_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
