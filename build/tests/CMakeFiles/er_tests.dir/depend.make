# Empty dependencies file for er_tests.
# This may be replaced when dependencies are built.
