
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/BaselinesTest.cpp" "tests/CMakeFiles/er_tests.dir/BaselinesTest.cpp.o" "gcc" "tests/CMakeFiles/er_tests.dir/BaselinesTest.cpp.o.d"
  "/root/repo/tests/ErCoreTest.cpp" "tests/CMakeFiles/er_tests.dir/ErCoreTest.cpp.o" "gcc" "tests/CMakeFiles/er_tests.dir/ErCoreTest.cpp.o.d"
  "/root/repo/tests/FuzzPipelineTest.cpp" "tests/CMakeFiles/er_tests.dir/FuzzPipelineTest.cpp.o" "gcc" "tests/CMakeFiles/er_tests.dir/FuzzPipelineTest.cpp.o.d"
  "/root/repo/tests/InvariantsTest.cpp" "tests/CMakeFiles/er_tests.dir/InvariantsTest.cpp.o" "gcc" "tests/CMakeFiles/er_tests.dir/InvariantsTest.cpp.o.d"
  "/root/repo/tests/IrTraceTest.cpp" "tests/CMakeFiles/er_tests.dir/IrTraceTest.cpp.o" "gcc" "tests/CMakeFiles/er_tests.dir/IrTraceTest.cpp.o.d"
  "/root/repo/tests/LangSemanticsTest.cpp" "tests/CMakeFiles/er_tests.dir/LangSemanticsTest.cpp.o" "gcc" "tests/CMakeFiles/er_tests.dir/LangSemanticsTest.cpp.o.d"
  "/root/repo/tests/LangVmTest.cpp" "tests/CMakeFiles/er_tests.dir/LangVmTest.cpp.o" "gcc" "tests/CMakeFiles/er_tests.dir/LangVmTest.cpp.o.d"
  "/root/repo/tests/OptimizeTest.cpp" "tests/CMakeFiles/er_tests.dir/OptimizeTest.cpp.o" "gcc" "tests/CMakeFiles/er_tests.dir/OptimizeTest.cpp.o.d"
  "/root/repo/tests/SolverTest.cpp" "tests/CMakeFiles/er_tests.dir/SolverTest.cpp.o" "gcc" "tests/CMakeFiles/er_tests.dir/SolverTest.cpp.o.d"
  "/root/repo/tests/SymexTest.cpp" "tests/CMakeFiles/er_tests.dir/SymexTest.cpp.o" "gcc" "tests/CMakeFiles/er_tests.dir/SymexTest.cpp.o.d"
  "/root/repo/tests/WorkloadsTest.cpp" "tests/CMakeFiles/er_tests.dir/WorkloadsTest.cpp.o" "gcc" "tests/CMakeFiles/er_tests.dir/WorkloadsTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/er_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/er/CMakeFiles/er_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/er_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/invariants/CMakeFiles/er_invariants.dir/DependInfo.cmake"
  "/root/repo/build/src/symex/CMakeFiles/er_symex.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/er_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/er_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/er_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/er_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/er_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/er_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
