//===- bench_table1_bugs.cpp - Reproduces Table 1 of the paper -----------------===//
//
// For each of the 13 evaluation bugs: runs the full iterative ER loop
// (trace -> shepherded symbolic execution -> key data value selection ->
// instrument -> reoccurrence) until a validated failing test case is
// generated, then prints the Table 1 row: bug type, multithreadedness,
// LoC, dynamic instructions of the failing execution, the number of
// failure occurrences consumed, and total symbolic-execution time.
//
// Absolute times differ from the paper (its substrate was x86/KLEE on a
// Xeon testbed); the reproduced shape is the *occurrence distribution*
// (a couple of bugs reproduce from a single occurrence, most need a few)
// and the relative symbex cost ordering.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "er/Driver.h"
#include "support/Format.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstring>

using namespace er;

int main(int argc, char **argv) {
  std::string Only;
  bench::JsonReporter Json("bench_table1_bugs");
  for (int I = 1; I < argc; ++I) {
    if (int R = Json.parseArg(argc, argv, I)) {
      if (R < 0)
        return 2;
    } else if (std::strncmp(argv[I], "--", 2) != 0 && Only.empty())
      Only = argv[I];
    else {
      std::printf("usage: bench_table1_bugs [BugId] [--json FILE]\n");
      return 2;
    }
  }

  std::printf("Table 1: bugs reproduced by ER (paper Table 1 analog)\n");
  std::printf("%-22s %-26s %-3s %5s %10s %7s %12s  %s\n", "Application-BugID",
              "Bug Type", "MT", "LoC", "#Instr", "#Occur", "Symbex Time",
              "Status");
  std::printf("%.120s\n",
              "----------------------------------------------------------"
              "--------------------------------------------------------------");

  unsigned Succeeded = 0, Total = 0;
  unsigned SingleOccurrence = 0;
  double OccurSum = 0;
  for (const auto &Spec : allBugSpecs()) {
    if (!Only.empty() && Spec.Id != Only)
      continue;
    ++Total;
    auto M = compileBug(Spec);
    DriverConfig DC;
    DC.Solver.WorkBudget = Spec.SolverWorkBudget;
    DC.Vm.ChunkSize = Spec.VmChunkSize;
    DC.Seed = 20260706;
    DC.MaxIterations = 16;
    ReconstructionDriver Driver(*M, DC);
    ReconstructionReport Report =
        Driver.reconstruct([&](Rng &R) { return Spec.ProductionInput(R); });

    if (Report.Success) {
      ++Succeeded;
      OccurSum += Report.Occurrences;
      if (Report.Occurrences == 1)
        ++SingleOccurrence;
    }
    std::printf("%-22s %-26s %-3s %5u %10llu %7u %9.2f s  %s\n",
                Spec.Id.c_str(), Spec.BugType.c_str(),
                Spec.Multithreaded ? "Y" : "N", sourceLineCount(Spec),
                static_cast<unsigned long long>(Report.FailingInstrCount),
                Report.Occurrences, Report.TotalSymexSeconds,
                Report.Success ? "reproduced"
                               : Report.FailureDetail.c_str());
    std::fflush(stdout);
    Json.add("bug")
        .param("bug", Spec.Id)
        .param("multithreaded", static_cast<uint64_t>(Spec.Multithreaded))
        .metric("failing_instrs", Report.FailingInstrCount)
        .metric("occurrences", Report.Occurrences)
        .metric("symex_s", Report.TotalSymexSeconds)
        .metric("reproduced", static_cast<uint64_t>(Report.Success));
  }

  if (Total > 1) {
    std::printf("\n%u/%u bugs reproduced; %u from a single occurrence; "
                "mean occurrences %.1f (paper: 13/13, 2 single, mean ~3.5)\n",
                Succeeded, Total, SingleOccurrence,
                Succeeded ? OccurSum / Succeeded : 0.0);
    Json.add("summary")
        .metric("reproduced", Succeeded)
        .metric("total", Total)
        .metric("single_occurrence", SingleOccurrence)
        .metric("mean_occurrences", Succeeded ? OccurSum / Succeeded : 0.0);
  }
  if (int Rc = Json.flush())
    return Rc;
  return Succeeded == Total ? 0 : 1;
}
