//===- bench_obs_overhead.cpp - Observability primitive costs ---------------===//
//
// Measures the per-operation cost of the src/obs/ primitives the pipeline
// is instrumented with, in the states that matter for the <2% overhead
// budget (docs/OBSERVABILITY.md):
//
//   - counter add (sharded atomic, the hot fleet-worker path);
//   - gauge set;
//   - histogram record (lower_bound over ~12 bounds + 3 atomics);
//   - ScopedSpan with the tracer DISABLED (the default production state:
//     one relaxed load, no allocation — this is the number the compiled-in
//     instrumentation costs every run that never asks for a trace);
//   - ScopedSpan with the tracer enabled, with and without args.
//
// The bench fails if a disabled span costs more than 1/20th of an enabled
// one or more than DisabledBudgetNs — a regression here silently taxes
// every uninstrumented run, which is exactly what the design forbids.
//
// Usage: bench_obs_overhead [--iters N] [--json FILE]
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "obs/Metrics.h"
#include "obs/Tracer.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace er;

namespace {

double nsPerOp(uint64_t Iters, double Seconds) {
  return 1e9 * Seconds / static_cast<double>(Iters);
}

template <typename Fn> double timeLoop(uint64_t Iters, Fn &&F) {
  auto T0 = std::chrono::steady_clock::now();
  for (uint64_t I = 0; I < Iters; ++I)
    F(I);
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(T1 - T0).count();
}

} // namespace

int main(int argc, char **argv) {
  uint64_t Iters = 2'000'000;
  bench::JsonReporter Json("bench_obs_overhead");
  for (int I = 1; I < argc; ++I) {
    if (int R = Json.parseArg(argc, argv, I)) {
      if (R < 0)
        return 2;
    } else if (!std::strcmp(argv[I], "--iters") && I + 1 < argc)
      Iters = std::strtoull(argv[++I], nullptr, 10);
    else {
      std::printf("usage: bench_obs_overhead [--iters N] [--json FILE]\n");
      return 2;
    }
  }

  // A private tracer/registry so the numbers are not polluted by (and do
  // not pollute) the global pipeline telemetry.
  obs::MetricsRegistry Reg;
  obs::Counter &C = Reg.counter("bench.counter");
  obs::Gauge &G = Reg.gauge("bench.gauge");
  obs::Histogram &H = Reg.histogram("bench.histogram");
  obs::PipelineTracer Tracer(1 << 12);

  std::printf("obs primitive costs (%llu iterations each)\n\n",
              (unsigned long long)Iters);
  std::printf("%-28s %12s\n", "operation", "ns/op");

  struct Row {
    const char *Name;
    double NsPerOp;
  };
  Row Rows[5];

  Rows[0] = {"counter.add",
             nsPerOp(Iters, timeLoop(Iters, [&](uint64_t) { C.add(1); }))};
  Rows[1] = {"gauge.set", nsPerOp(Iters, timeLoop(Iters, [&](uint64_t I) {
               G.set(static_cast<int64_t>(I));
             }))};
  Rows[2] = {"histogram.record",
             nsPerOp(Iters, timeLoop(Iters, [&](uint64_t I) {
               H.record(I & 0xFFFF);
             }))};

  Tracer.setEnabled(false);
  Rows[3] = {"span (tracer disabled)",
             nsPerOp(Iters, timeLoop(Iters, [&](uint64_t) {
               obs::ScopedSpan S(Tracer, "bench.span", "bench");
             }))};

  // Enabled spans are mutex + ring push + string copies; far fewer per
  // run, so fewer iterations keep the bench quick.
  uint64_t EnabledIters = Iters / 20 ? Iters / 20 : 1;
  Tracer.setEnabled(true);
  Rows[4] = {"span (tracer enabled)",
             nsPerOp(EnabledIters, timeLoop(EnabledIters, [&](uint64_t I) {
               obs::ScopedSpan S(Tracer, "bench.span", "bench");
               S.arg("i", I);
             }))};

  for (const Row &R : Rows)
    std::printf("%-28s %12.2f\n", R.Name, R.NsPerOp);

  // Regression gates. The disabled-span budget is generous (it is a
  // relaxed load; even an order-of-magnitude miss stays under it on any
  // non-pathological machine) because CI machines are noisy — the gate is
  // for "someone added an allocation to the disabled path", not for
  // single-digit-ns drift.
  const double DisabledBudgetNs = 50.0;
  bool DisabledCheap = Rows[3].NsPerOp <= DisabledBudgetNs &&
                       Rows[3].NsPerOp * 5 <= Rows[4].NsPerOp;
  std::printf("\ndisabled span <= %.0fns and <= 1/5 of enabled: %s "
              "(%.2fns vs %.2fns)\n",
              DisabledBudgetNs, DisabledCheap ? "yes" : "NO", Rows[3].NsPerOp,
              Rows[4].NsPerOp);

  for (const Row &R : Rows)
    Json.add("primitive")
        .param("op", R.Name)
        .param("iters", R.Name == Rows[4].Name ? EnabledIters : Iters)
        .metric("ns_per_op", R.NsPerOp);
  Json.add("summary")
      .metric("disabled_span_ns", Rows[3].NsPerOp)
      .metric("enabled_span_ns", Rows[4].NsPerOp)
      .metric("disabled_cheap", static_cast<uint64_t>(DisabledCheap));

  if (int Rc = Json.flush())
    return Rc;
  return DisabledCheap ? 0 : 1;
}
