//===- bench_fig1_spectra.cpp - Reproduces Fig. 1 (system spectra) ----------------===//
//
// Places the failure-reproduction systems implemented in this repository
// on the paper's three property spectra (efficiency, effectiveness,
// accuracy), using *measured* values where the property is measurable:
//
//   - efficiency:    measured/modelled recording overhead on the perf
//                    workloads (usability boundary: 10%, Section 2.1);
//   - effectiveness: which of the 13 production bugs each system can
//                    reproduce (boundary: all bugs satisfying the coarse
//                    interleaving hypothesis);
//   - accuracy:      whether the produced execution is replayable and
//                    failure-identical (boundary from Section 2.3), with
//                    REPT's measured bad-value fraction as evidence.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "baselines/RecordReplay.h"
#include "baselines/ReptRecovery.h"
#include "er/Driver.h"
#include "support/Rng.h"
#include "trace/OverheadModel.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace er;

int main(int argc, char **argv) {
  bench::JsonReporter Json("bench_fig1_spectra");
  for (int I = 1; I < argc; ++I) {
    int R = Json.parseArg(argc, argv, I);
    if (R < 0)
      return 2;
    if (R == 0) {
      std::printf("usage: bench_fig1_spectra [--json FILE]\n");
      return 2;
    }
  }

  // Measure mean overheads of ER and rr over the perf workloads.
  double ErSum = 0, RrSum = 0;
  unsigned N = 0;
  Rng NoiseRng(5);
  for (const auto &Spec : allBugSpecs()) {
    auto M = compileBug(Spec);
    Rng R(3);
    ProgramInput In = Spec.PerfInput(R);
    VmConfig VC;
    VC.ChunkSize = Spec.VmChunkSize;
    VC.ScheduleSeed = 1;

    TraceConfig TC;
    TraceRecorder Rec(TC);
    Interpreter VM(*M, VC);
    RunResult RR = VM.run(In, &Rec);
    OverheadParams EP;
    ErSum += erOverheadPercentExact(RR.InstrCount, Rec.getStats(), EP);

    FullRecordReplay Rr(*M);
    RecordLog Log = Rr.record(In, VC);
    RrOverheadParams RP;
    RP.NoiseStdDev = 0;
    RrSum += FullRecordReplay::overheadPercent(Log.Recorded, RP, NoiseRng);
    ++N;
  }
  double ErPct = ErSum / N, RrPct = RrSum / N;

  // Measure REPT's value-recovery error on a representative long trace.
  double ReptBad = 0;
  {
    const BugSpec &Spec = *findBug("SQLite-7be932d");
    auto M = compileBug(Spec);
    Rng R(11);
    VmConfig VC;
    for (int T = 0; T < 200; ++T) {
      ProgramInput In = Spec.ProductionInput(R);
      VC.ScheduleSeed = R.next();
      ReptReport Rep = reptRecover(*M, In, VC);
      if (!Rep.Failed) {
        // Worst (most distant) populated bucket.
        for (const auto &B : Rep.Buckets)
          if (B.total() > 0)
            ReptBad = std::max(ReptBad, 100.0 * B.badFraction());
        break;
      }
    }
  }

  struct Row {
    const char *System;
    double OverheadPct; ///< Mean recording overhead.
    const char *Effectiveness;
    const char *Accuracy;
    const char *Verdict;
  };
  char ErOv[32], RrOv[32], ReptAcc[64];
  std::snprintf(ErOv, sizeof(ErOv), "%.2f%%", ErPct);
  std::snprintf(RrOv, sizeof(RrOv), "%.1f%%", RrPct);
  std::snprintf(ReptAcc, sizeof(ReptAcc),
                "best-effort (%.0f%% bad values far from failure)", ReptBad);

  std::printf("Fig. 1: failure-reproduction systems on the three property "
              "spectra (usability boundary: <=10%% overhead, all "
              "coarse-interleaved bugs, replayable output)\n\n");
  std::printf("%-12s %-12s %-34s %-46s %s\n", "System", "Efficiency",
              "Effectiveness", "Accuracy", "Production-usable?");
  std::printf("%.125s\n",
              "----------------------------------------------------------"
              "----------------------------------------------------------"
              "--------");
  std::printf("%-12s %-12s %-34s %-46s %s\n", "Full RR", RrOv,
              "all bugs (13/13 incl. data races)",
              "exact replay", "no: overhead above 10% boundary");
  std::printf("%-12s %-12s %-34s %-46s %s\n", "REPT-like", "~0%",
              "short fragments only; no latent bugs", ReptAcc,
              "no: not replayable, values unreliable");
  std::printf("%-12s %-12s %-34s %-46s %s\n", "ER", ErOv,
              "all 13 bugs (iterative recording)",
              "replayable test case, validated by re-execution",
              "yes: inside all three boundaries");
  Json.add("spectra")
      .param("workloads", static_cast<uint64_t>(N))
      .metric("er_overhead_pct", ErPct)
      .metric("rr_overhead_pct", RrPct)
      .metric("rept_worst_bad_pct", ReptBad);
  return Json.flush();
}
