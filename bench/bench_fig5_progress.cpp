//===- bench_fig5_progress.cpp - Reproduces Fig. 5 -------------------------------===//
//
// The benefit of data value recording on shepherded symbolic execution:
// for the PHP-74194 analog, runs symbolic execution over the same failing
// trace with (a) control flow only, (b) control flow + 1st-iteration data
// values, (c) control flow + 2nd-iteration data values, with the stall
// timeout disabled, and reports the time (and solver work) each
// configuration needs — the paper's Fig. 5 series (11468s / 5006s / 1800s
// wall on their testbed; the reproduced property is the strict ordering
// and the multi-x gap).
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "er/ConstraintGraph.h"
#include "er/Instrumenter.h"
#include "er/Selection.h"
#include "support/Timer.h"
#include "symex/SymExecutor.h"
#include "vm/Interpreter.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace er;

namespace {

struct SeriesPoint {
  const char *Label;
  double Seconds;
  uint64_t Work;
  uint64_t Instrs;
  SymexStatus Status;
};

/// Runs shepherded symbolic execution over a fresh failing trace of \p M
/// with a very large budget (the "no timeout" configuration of Fig. 5).
SeriesPoint runOnce(const char *Label, Module &M, const BugSpec &Spec,
                    uint64_t Seed) {
  Rng R(Seed);
  VmConfig VC;
  VC.ChunkSize = Spec.VmChunkSize;
  for (;;) {
    ProgramInput In = Spec.ProductionInput(R);
    VC.ScheduleSeed = R.next();
    TraceConfig TC;
    TraceRecorder Rec(TC);
    Interpreter VM(M, VC);
    RunResult RR = VM.run(In, &Rec);
    if (RR.Status != ExitStatus::Failure)
      continue;

    ExprContext Ctx;
    SolverConfig SC;
    SC.WorkBudget = 1ull << 40;   // Disable the work-based stall timeout.
    SC.WallSecondsBudget = 120.0; // Generous wall backstop.
    ConstraintSolver Solver(Ctx, SC);
    ShepherdedExecutor SE(M, Ctx, Solver, SymexConfig());
    Stopwatch W;
    SymexResult SR = SE.run(Rec.decode(), RR.Failure);
    return {Label, W.seconds(), SR.SolverWork, SR.InstrExecuted, SR.Status};
  }
}

/// Applies one selection iteration's instrumentation to \p M, using a
/// stalled run at the configured (small) budget.
bool applyOneIteration(Module &M, const BugSpec &Spec, uint64_t Seed) {
  Rng R(Seed);
  VmConfig VC;
  VC.ChunkSize = Spec.VmChunkSize;
  for (int Tries = 0; Tries < 200; ++Tries) {
    ProgramInput In = Spec.ProductionInput(R);
    VC.ScheduleSeed = R.next();
    TraceConfig TC;
    TraceRecorder Rec(TC);
    Interpreter VM(M, VC);
    RunResult RR = VM.run(In, &Rec);
    if (RR.Status != ExitStatus::Failure)
      continue;
    ExprContext Ctx;
    SolverConfig SC;
    SC.WorkBudget = Spec.SolverWorkBudget;
    ConstraintSolver Solver(Ctx, SC);
    ShepherdedExecutor SE(M, Ctx, Solver, SymexConfig());
    SymexResult SR = SE.run(Rec.decode(), RR.Failure);
    if (SR.Status != SymexStatus::Stalled)
      return false; // Nothing more to record.
    ConstraintGraph G(SR.Snapshot);
    KeyValueSelector Sel(G, instrumentedSites(M));
    return instrumentModule(M, Sel.computeRecordingSet()) > 0;
  }
  return false;
}

} // namespace

int main(int argc, char **argv) {
  bench::JsonReporter Json("bench_fig5_progress");
  for (int I = 1; I < argc; ++I) {
    int R = Json.parseArg(argc, argv, I);
    if (R < 0)
      return 2;
    if (R == 0) {
      std::printf("usage: bench_fig5_progress [--json FILE]\n");
      return 2;
    }
  }

  const BugSpec Spec = makePhp74194();
  std::printf("Fig. 5: symbolic-execution progress for %s with 0/1/2 "
              "iterations of recorded data values\n\n",
              Spec.Id.c_str());

  // Configuration (a): control flow only.
  auto M0 = compileBug(Spec);
  SeriesPoint P0 = runOnce("control-flow + no data values", *M0, Spec, 42);

  // Configuration (b): after the 1st iteration of key data value selection.
  auto M1 = compileBug(Spec);
  applyOneIteration(*M1, Spec, 42);
  SeriesPoint P1 =
      runOnce("control-flow + 1st iteration data values", *M1, Spec, 42);

  // Configuration (c): after the 2nd iteration.
  auto M2 = compileBug(Spec);
  applyOneIteration(*M2, Spec, 42);
  applyOneIteration(*M2, Spec, 43);
  SeriesPoint P2 =
      runOnce("control-flow + 2nd iteration data values", *M2, Spec, 42);

  std::printf("%-44s %10s %14s %12s %s\n", "configuration", "wall (s)",
              "solver work", "instrs", "status");
  unsigned Iter = 0;
  for (const SeriesPoint &P : {P0, P1, P2}) {
    std::printf("%-44s %10.2f %14llu %12llu %s\n", P.Label, P.Seconds,
                static_cast<unsigned long long>(P.Work),
                static_cast<unsigned long long>(P.Instrs),
                symexStatusName(P.Status));
    Json.add("series_point")
        .param("bug", Spec.Id)
        .param("recording_iterations", Iter++)
        .param("configuration", P.Label)
        .metric("wall_s", P.Seconds)
        .metric("solver_work", P.Work)
        .metric("instrs", P.Instrs)
        .param("status", symexStatusName(P.Status));
  }

  std::printf("\nExpected shape (paper: 11468s -> 5006s -> 1800s): each "
              "added iteration of recorded values strictly reduces the "
              "symbolic-execution cost.\n");
  bool Ordered = P0.Work >= P1.Work && P1.Work >= P2.Work;
  std::printf("ordering holds: %s\n", Ordered ? "yes" : "NO");
  Json.add("summary").metric("ordering_holds", static_cast<uint64_t>(Ordered));
  if (int Rc = Json.flush())
    return Rc;
  return Ordered ? 0 : 1;
}
