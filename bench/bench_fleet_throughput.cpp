//===- bench_fleet_throughput.cpp - Fleet service throughput ------------------===//
//
// Measures the fleet reconstruction service (src/fleet/) end to end:
// harvest the workload corpus into deduplicated failure buckets, then run
// every campaign at 1/2/4/8 workers and report campaigns/minute, parallel
// speedup, and the shared solver cache's hit rate.
//
// The online phase of a campaign is dominated by *waiting for the failure
// to reoccur* in the deployment — wall-clock hours in the paper, and no
// CPU on the reconstruction service. The bench models that wait with
// DriverConfig::OccurrenceLatencySeconds (scaled down to keep the bench
// short); overlapping those waits across campaigns is precisely what the
// worker pool buys, so campaigns/minute scales with workers even though
// the offline (symbex + solving) phases still contend for the CPU.
//
// Determinism: the per-campaign seeds are split from the root seed by
// failure signature, so every worker count reconstructs byte-identical
// test cases (asserted below).
//
// Usage: bench_fleet_throughput [--quick] [--latency SECONDS] [--json FILE]
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "fleet/FleetScheduler.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace er;

namespace {
struct RunStats {
  unsigned Jobs = 0;
  unsigned Campaigns = 0;
  unsigned Reproduced = 0;
  double WallSeconds = 0;
  SolverCacheStats Cache;
  /// signature digest -> generated test case, for the cross-jobs
  /// determinism check.
  std::vector<std::pair<uint64_t, ProgramInput>> TestCases;
};
} // namespace

static RunStats runFleet(unsigned Jobs, const std::vector<const BugSpec *> &Corpus,
                         unsigned Machines, unsigned Runs, double Latency) {
  FleetConfig FC;
  FC.Jobs = Jobs;
  FC.RootSeed = 20260807;
  FC.DriverBase.OccurrenceLatencySeconds = Latency;

  FleetScheduler Sched(FC);
  for (unsigned Machine = 0; Machine < Machines; ++Machine)
    for (const BugSpec *Spec : Corpus)
      Sched.harvest(*Spec, Runs, Machine);

  FleetReport FR = Sched.run();

  RunStats S;
  S.Jobs = Jobs;
  S.Campaigns = FR.CampaignsRun;
  S.Reproduced = FR.Reproduced;
  S.WallSeconds = FR.WallSeconds;
  S.Cache = FR.Cache;
  for (const Campaign &C : FR.Campaigns)
    if (C.Report.Success)
      S.TestCases.emplace_back(C.Sig.Digest, C.Report.TestCase);
  return S;
}

int main(int argc, char **argv) {
  bool Quick = false;
  double Latency = 0.4;
  bench::JsonReporter Json("bench_fleet_throughput");
  for (int I = 1; I < argc; ++I) {
    if (int R = Json.parseArg(argc, argv, I)) {
      if (R < 0)
        return 2;
    } else if (!std::strcmp(argv[I], "--quick"))
      Quick = true;
    else if (!std::strcmp(argv[I], "--latency") && I + 1 < argc)
      Latency = std::strtod(argv[++I], nullptr);
    else {
      std::printf("usage: bench_fleet_throughput [--quick] [--latency S] "
                  "[--json FILE]\n");
      return 2;
    }
  }

  std::vector<const BugSpec *> Corpus;
  for (const auto &S : allBugSpecs()) {
    if (Quick && (S.Id == "PHP-74194" || S.Id == "SQLite-7be932d"))
      continue; // The two slowest offline phases; --quick trims them.
    Corpus.push_back(&S);
  }
  unsigned Machines = Quick ? 1 : 2;
  unsigned Runs = Quick ? 120 : 150;

  std::printf("fleet throughput over %zu workload(s), %u machine(s) x %u "
              "production run(s), %.2fs simulated reoccurrence latency\n\n",
              Corpus.size(), Machines, Runs, Latency);
  std::printf("%5s %10s %11s %14s %8s %11s %10s %10s\n", "jobs", "campaigns",
              "wall (s)", "campaigns/min", "speedup", "cache hits",
              "hit rate", "evictions");

  std::vector<RunStats> All;
  double BaselineCpm = 0;
  bool SpeedupOk = false, CacheOk = false;
  for (unsigned Jobs : {1u, 2u, 4u, 8u}) {
    RunStats S = runFleet(Jobs, Corpus, Machines, Runs, Latency);
    double Cpm = S.WallSeconds > 0 ? 60.0 * S.Campaigns / S.WallSeconds : 0;
    if (Jobs == 1)
      BaselineCpm = Cpm;
    double Speedup = BaselineCpm > 0 ? Cpm / BaselineCpm : 0;
    if (Jobs == 4 && Speedup > 1.5)
      SpeedupOk = true;
    if (S.Cache.Hits > 0)
      CacheOk = true;
    std::printf("%5u %10u %11.2f %14.1f %7.2fx %11llu %9.1f%% %10llu\n", Jobs,
                S.Campaigns, S.WallSeconds, Cpm, Speedup,
                (unsigned long long)S.Cache.Hits, 100.0 * S.Cache.hitRate(),
                (unsigned long long)S.Cache.Evictions);
    Json.add("fleet_run")
        .param("jobs", Jobs)
        .param("machines", Machines)
        .param("runs_per_machine", Runs)
        .param("latency_s", Latency)
        .param("quick", static_cast<uint64_t>(Quick))
        .metric("campaigns", S.Campaigns)
        .metric("reproduced", S.Reproduced)
        .metric("wall_s", S.WallSeconds)
        .metric("campaigns_per_min", Cpm)
        .metric("speedup", Speedup)
        .metric("cache_hits", S.Cache.Hits)
        .metric("cache_hit_rate", S.Cache.hitRate())
        .metric("cache_evictions", S.Cache.Evictions);
    All.push_back(std::move(S));
  }

  // Cross-jobs determinism: every worker count must generate byte-identical
  // test cases per failure bucket.
  bool Deterministic = true;
  for (size_t I = 1; I < All.size(); ++I) {
    if (All[I].TestCases.size() != All[0].TestCases.size())
      Deterministic = false;
    else
      for (size_t K = 0; K < All[0].TestCases.size(); ++K) {
        const auto &[DigA, InA] = All[0].TestCases[K];
        const auto &[DigB, InB] = All[I].TestCases[K];
        if (DigA != DigB || InA.Args != InB.Args || InA.Bytes != InB.Bytes)
          Deterministic = false;
      }
    if (!Deterministic) {
      std::printf("\nFAIL: jobs=%u produced different test cases than "
                  "jobs=1\n", All[I].Jobs);
      return 1;
    }
  }

  std::printf("\ntest cases byte-identical across all worker counts: yes\n");
  std::printf("4-worker speedup > 1.5x: %s\n", SpeedupOk ? "yes" : "NO");
  std::printf("solver cache hit rate nonzero: %s\n", CacheOk ? "yes" : "NO");
  if (int Rc = Json.flush())
    return Rc;
  return SpeedupOk && CacheOk ? 0 : 1;
}
