//===- BenchJson.h - Machine-readable bench records -------------*- C++ -*-===//
///
/// \file
/// Every bench_*.cpp accepts `--json FILE` and emits its measurements as
///
///   {"bench": "<name>",
///    "records": [{"name": ..., "params": {...}, "metrics": {...}}, ...]}
///
/// so the perf trajectory in EXPERIMENTS.md / BENCH_*.json can be produced
/// and diffed by scripts instead of scraping stdout tables. Usage:
///
///   bench::JsonReporter Json("bench_x");
///   ... parse args, call Json.parseArg(argc, argv, I) in the loop ...
///   Json.add("phase1").param("jobs", Jobs).metric("wall_s", Wall);
///   return Json.flush();   // no-op (0) when --json was not given
///
//===----------------------------------------------------------------------===//

#ifndef ER_BENCH_BENCHJSON_H
#define ER_BENCH_BENCHJSON_H

#include "obs/Json.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace er {
namespace bench {

class JsonReporter {
  struct Field {
    std::string Key;
    enum Kind { U64, F64, Str } K;
    uint64_t U = 0;
    double D = 0;
    std::string S;
  };

public:
  class Record {
  public:
    Record &param(std::string_view K, uint64_t V) {
      Params.push_back({std::string(K), Field::U64, V, 0, {}});
      return *this;
    }
    Record &param(std::string_view K, unsigned V) {
      return param(K, static_cast<uint64_t>(V));
    }
    Record &param(std::string_view K, double V) {
      Params.push_back({std::string(K), Field::F64, 0, V, {}});
      return *this;
    }
    Record &param(std::string_view K, std::string_view V) {
      Params.push_back({std::string(K), Field::Str, 0, 0, std::string(V)});
      return *this;
    }
    Record &metric(std::string_view K, uint64_t V) {
      Metrics.push_back({std::string(K), Field::U64, V, 0, {}});
      return *this;
    }
    Record &metric(std::string_view K, unsigned V) {
      return metric(K, static_cast<uint64_t>(V));
    }
    Record &metric(std::string_view K, double V) {
      Metrics.push_back({std::string(K), Field::F64, 0, V, {}});
      return *this;
    }

  private:
    friend class JsonReporter;
    std::string Name;
    std::vector<Field> Params, Metrics;
  };

  explicit JsonReporter(std::string BenchName)
      : BenchName(std::move(BenchName)) {}

  /// Consumes `--json FILE` at argv[I] (advancing I past the value).
  /// Returns 1 if consumed, 0 if argv[I] is something else, -1 when the
  /// value is missing (after printing a message).
  int parseArg(int argc, char **argv, int &I) {
    if (std::strcmp(argv[I], "--json") != 0)
      return 0;
    if (I + 1 >= argc) {
      std::printf("--json needs a value\n");
      return -1;
    }
    Path = argv[++I];
    return 1;
  }

  bool enabled() const { return !Path.empty(); }

  Record &add(std::string Name) {
    Records.emplace_back();
    Records.back().Name = std::move(Name);
    return Records.back();
  }

  /// Writes the document when --json was given. Returns 0 on success (or
  /// when no output was requested), 1 on I/O failure — benches return this
  /// from main so CI catches a failed export.
  int flush() const {
    if (Path.empty())
      return 0;
    obs::JsonWriter W;
    W.beginObject();
    W.kv("bench", BenchName);
    W.key("records");
    W.beginArray();
    for (const Record &R : Records) {
      W.beginObject();
      W.kv("name", R.Name);
      W.key("params");
      writeFields(W, R.Params);
      W.key("metrics");
      writeFields(W, R.Metrics);
      W.endObject();
    }
    W.endArray();
    W.endObject();
    std::string Err;
    if (!obs::writeTextFile(Path, W.str(), &Err)) {
      std::printf("cannot write %s: %s\n", Path.c_str(), Err.c_str());
      return 1;
    }
    std::printf("json records written to %s\n", Path.c_str());
    return 0;
  }

private:
  static void writeFields(obs::JsonWriter &W, const std::vector<Field> &Fs) {
    W.beginObject();
    for (const Field &F : Fs) {
      W.key(F.Key);
      switch (F.K) {
      case Field::U64:
        W.value(F.U);
        break;
      case Field::F64:
        W.value(F.D);
        break;
      case Field::Str:
        W.value(std::string_view(F.S));
        break;
      }
    }
    W.endObject();
  }

  std::string BenchName;
  std::string Path;
  std::vector<Record> Records;
};

} // namespace bench
} // namespace er

#endif // ER_BENCH_BENCHJSON_H
