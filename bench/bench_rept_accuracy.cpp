//===- bench_rept_accuracy.cpp - REPT accuracy vs trace length (Sec 2.3/5.2) -----===//
//
// Reproduces the accuracy critique of REPT used throughout the paper: a
// best-effort reverse-recovery baseline (control-flow trace + memory dump,
// no data recording) recovers register values with increasing error as the
// distance from the failure grows — "15%-60% of values incorrectly
// recovered for traces longer than 100K instructions" — and the developer
// cannot tell which values are wrong. ER, by contrast, validates its
// output by concrete replay.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "baselines/ReptRecovery.h"
#include "vm/Interpreter.h"
#include "support/Rng.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace er;

int main(int argc, char **argv) {
  bench::JsonReporter Json("bench_rept_accuracy");
  for (int I = 1; I < argc; ++I) {
    int R = Json.parseArg(argc, argv, I);
    if (R < 0)
      return 2;
    if (R == 0) {
      std::printf("usage: bench_rept_accuracy [--json FILE]\n");
      return 2;
    }
  }

  std::printf("REPT-style recovery accuracy by distance from the failure\n");
  std::printf("%-22s %10s | %-22s %-22s %-22s %-22s\n", "Bug", "trace len",
              "<1K: bad%(unk%)", "<10K", "<100K", ">=100K");
  std::printf("%.125s\n",
              "----------------------------------------------------------"
              "----------------------------------------------------------"
              "--------");

  for (const auto &Spec : allBugSpecs()) {
    if (Spec.Multithreaded)
      continue; // The recovery shadow replays single-threaded runs.
    auto M = compileBug(Spec);
    Rng R(20260706);
    VmConfig VC;
    VC.ChunkSize = Spec.VmChunkSize;

    // Find a failing input (larger perf-shaped corpus when possible so the
    // trace is long).
    ReptReport Report;
    for (int Tries = 0; Tries < 400; ++Tries) {
      ProgramInput In = Spec.ProductionInput(R);
      VC.ScheduleSeed = R.next();
      // First find the failing run's length, then analyze with a trace
      // window covering its second half (real deployments run far longer
      // than the PT ring retains).
      Interpreter Probe(*M, VC);
      RunResult PR = Probe.run(In);
      if (PR.Status != ExitStatus::Failure)
        continue;
      Report = reptRecover(*M, In, VC, PR.InstrCount / 2);
      if (!Report.Failed && Report.TraceLength > 0)
        break;
    }
    if (Report.Failed || Report.Buckets.empty())
      continue;

    std::printf("%-22s %10llu |", Spec.Id.c_str(),
                static_cast<unsigned long long>(Report.TraceLength));
    auto &Rec = Json.add("recovery")
                    .param("bug", Spec.Id)
                    .metric("trace_len", Report.TraceLength);
    static const char *BucketNames[] = {"lt_1k", "lt_10k", "lt_100k",
                                        "ge_100k"};
    size_t BI = 0;
    for (const auto &B : Report.Buckets) {
      std::string Prefix =
          BI < 4 ? BucketNames[BI] : ("bucket" + std::to_string(BI));
      ++BI;
      if (B.total() == 0) {
        std::printf(" %-22s", "-");
        continue;
      }
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "%4.1f%% (%4.1f%%) n=%llu",
                    100.0 * B.badFraction(), 100.0 * B.unknownFraction(),
                    static_cast<unsigned long long>(B.total()));
      std::printf(" %-22s", Buf);
      Rec.metric(Prefix + "_bad_frac", B.badFraction())
          .metric(Prefix + "_unknown_frac", B.unknownFraction())
          .metric(Prefix + "_n", B.total());
    }
    std::printf("\n");
  }

  std::printf("\nExpected shape: the bad-value fraction grows with distance "
              "from the failure; values near the dump recover well.\n");
  return Json.flush();
}
