//===- bench_buffer_sensitivity.cpp - Section 5.3 buffer-size sensitivity --------===//
//
// The paper reports no statistically significant runtime-overhead
// difference across PT ring-buffer sizes of 4KB..64MB, and sizes its
// buffer (64MB) by the largest trace it must retain. This bench reproduces
// both halves:
//   (1) recording overhead is buffer-size independent (bytes written do
//       not change; only eviction does);
//   (2) reconstruction *fails* when the ring is smaller than the failing
//       trace (truncation), which is why ER sizes the buffer generously.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "support/Rng.h"
#include "symex/SymExecutor.h"
#include "trace/OverheadModel.h"
#include "vm/Interpreter.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace er;

int main(int argc, char **argv) {
  bench::JsonReporter Json("bench_buffer_sensitivity");
  for (int I = 1; I < argc; ++I) {
    int R = Json.parseArg(argc, argv, I);
    if (R < 0)
      return 2;
    if (R == 0) {
      std::printf("usage: bench_buffer_sensitivity [--json FILE]\n");
      return 2;
    }
  }

  const BugSpec &Spec = *findBug("SQLite-7be932d");
  auto M = compileBug(Spec);

  const uint64_t Sizes[] = {4ull << 10, 64ull << 10, 1ull << 20, 16ull << 20,
                            64ull << 20};
  const char *Names[] = {"4KB", "64KB", "1MB", "16MB", "64MB"};

  std::printf("Ring-buffer sensitivity (%s perf workload)\n", Spec.Id.c_str());
  std::printf("%-8s %14s %14s %12s %s\n", "buffer", "bytes written",
              "bytes evicted", "overhead %", "failing trace decodable?");
  std::printf("%.80s\n",
              "----------------------------------------------------------"
              "----------------------");

  for (size_t K = 0; K < 5; ++K) {
    TraceConfig TC;
    TC.BufferBytes = Sizes[K];

    // Overhead on the perf workload.
    Rng R(7);
    ProgramInput Perf = Spec.PerfInput(R);
    VmConfig VC;
    VC.ChunkSize = Spec.VmChunkSize;
    VC.ScheduleSeed = 1;
    TraceRecorder Rec(TC);
    Interpreter VM(*M, VC);
    RunResult RR = VM.run(Perf, &Rec);
    OverheadParams P;
    double Pct = erOverheadPercentExact(RR.InstrCount, Rec.getStats(), P);

    // Decodability of a failing trace at this buffer size.
    Rng FR(11);
    bool Decodable = false;
    for (int T = 0; T < 200; ++T) {
      ProgramInput In = Spec.ProductionInput(FR);
      VmConfig VC2 = VC;
      VC2.ScheduleSeed = FR.next();
      TraceRecorder FRec(TC);
      Interpreter FVM(*M, VC2);
      RunResult FRR = FVM.run(In, &FRec);
      if (FRR.Status != ExitStatus::Failure)
        continue;
      Decodable = !FRec.decode().anyTruncated();
      break;
    }

    std::printf("%-8s %14llu %14llu %11.3f%% %s\n", Names[K],
                static_cast<unsigned long long>(Rec.getStats().BytesWritten),
                static_cast<unsigned long long>(Rec.getStats().EvictedBytes),
                Pct, Decodable ? "yes" : "NO (truncated)");
    Json.add("buffer_size")
        .param("bug", Spec.Id)
        .param("buffer_bytes", Sizes[K])
        .metric("bytes_written", Rec.getStats().BytesWritten)
        .metric("bytes_evicted", Rec.getStats().EvictedBytes)
        .metric("overhead_pct", Pct)
        .metric("decodable", static_cast<uint64_t>(Decodable));
  }

  std::printf("\nExpected: identical overhead across sizes (same bytes "
              "written); small buffers truncate the failing trace, which is "
              "why the paper provisions 64MB.\n");
  return Json.flush();
}
