//===- bench_ablation_random.cpp - Section 5.2 random-recording ablation ---------===//
//
// Compares key data value selection against a random recording strategy of
// the same cost (the paper's "Key Data Value Selection Effectiveness"
// experiment): for each bug that needs data recording, the random variant
// should fail to relieve the stalls (the paper reports it succeeds on only
// 1/11 such bugs).
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "er/Driver.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace er;

int main(int argc, char **argv) {
  bench::JsonReporter Json("bench_ablation_random");
  for (int I = 1; I < argc; ++I) {
    int R = Json.parseArg(argc, argv, I);
    if (R < 0)
      return 2;
    if (R == 0) {
      std::printf("usage: bench_ablation_random [--json FILE]\n");
      return 2;
    }
  }

  std::printf("Section 5.2 ablation: key data value selection vs random "
              "recording of equal cost\n");
  std::printf("%-22s %14s %14s %18s\n", "Bug", "guided occ",
              "random occ", "random outcome");
  std::printf("%.75s\n",
              "----------------------------------------------------------"
              "-----------------");

  unsigned NeedRecording = 0, RandomSucceeded = 0;
  for (const auto &Spec : allBugSpecs()) {
    auto RunWith = [&](bool Random) {
      auto M = compileBug(Spec);
      DriverConfig DC;
      DC.Solver.WorkBudget = Spec.SolverWorkBudget;
      DC.Vm.ChunkSize = Spec.VmChunkSize;
      DC.Seed = 20260706;
      DC.MaxIterations = 10;
      DC.UseRandomSelection = Random;
      ReconstructionDriver Driver(*M, DC);
      return Driver.reconstruct(
          [&](Rng &R) { return Spec.ProductionInput(R); });
    };

    ReconstructionReport Guided = RunWith(false);
    if (!Guided.Success || Guided.Occurrences <= 1)
      continue; // The bug reproduces without data recording: not part of
                // this ablation (paper: 11/13 need recording).
    ++NeedRecording;
    ReconstructionReport Random = RunWith(true);
    if (Random.Success)
      ++RandomSucceeded;
    std::printf("%-22s %14u %14u %18s\n", Spec.Id.c_str(),
                Guided.Occurrences, Random.Occurrences,
                Random.Success ? "reproduced" : "failed");
    std::fflush(stdout);
    Json.add("ablation")
        .param("bug", Spec.Id)
        .metric("guided_occurrences", Guided.Occurrences)
        .metric("random_occurrences", Random.Occurrences)
        .metric("random_reproduced", static_cast<uint64_t>(Random.Success));
  }

  std::printf("\nRandom recording reproduced %u/%u recording-dependent bugs "
              "(paper: 1/11). Guided selection reproduced all of them.\n",
              RandomSucceeded, NeedRecording);
  Json.add("summary")
      .metric("recording_dependent", NeedRecording)
      .metric("random_reproduced", RandomSucceeded);
  return Json.flush();
}
