//===- bench_gen_corpus.cpp - Generated corpus reconstruction gate -----------===//
//
// The acceptance gate for the generated workload factory (src/gen/):
//
//  1. generate: a fixed-seed corpus of >=200 campaigns must span the full
//     taxonomy (>=8 single-threaded + 3 concurrency classes) and be
//     byte-identical when regenerated — the determinism contract that
//     makes corpus artifacts reproducible from (seed, count) alone.
//  2. fleet: a fleet run over a generated batch must reconstruct >=90% of
//     single-threaded and >=60% of concurrency failure buckets.
//  3. schedsearch: with tie-break retries disabled, at least one planted
//     data race must be rescued by schedule search — a reproduction the
//     recorded-order replay alone misses — and the witness must replay.
//
// The bench exits nonzero when any gate fails, so CI (and the committed
// BENCH_gen_corpus.json) tracks the corpus quality, not just its size.
//
// Usage: bench_gen_corpus [--quick] [--seed N] [--count N] [--json FILE]
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "er/Driver.h"
#include "fleet/FleetScheduler.h"
#include "gen/CorpusWriter.h"
#include "gen/GenConfig.h"
#include "support/Timer.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

using namespace er;

namespace {

struct FleetRates {
  unsigned StBuckets = 0, StReproduced = 0;
  unsigned MtBuckets = 0, MtReproduced = 0;
  unsigned SchedRescues = 0;
  double WallSeconds = 0;
};

FleetRates runFleetOverCorpus(const std::vector<gen::GeneratedCampaign> &Batch,
                              unsigned Jobs, unsigned RunsPerMachine) {
  std::vector<BugSpec> Specs;
  Specs.reserve(Batch.size());
  for (const auto &C : Batch)
    Specs.push_back(gen::toBugSpec(C));
  // Campaign BugIds resolve through the workload registry at run time.
  registerGeneratedSpecs(Specs);

  FleetConfig FC;
  FC.Jobs = Jobs;
  FC.RootSeed = 20260809;
  FleetScheduler Sched(FC);
  Stopwatch Timer;
  for (const BugSpec &Spec : Specs)
    Sched.harvest(Spec, RunsPerMachine, /*MachineId=*/1);
  FleetReport FR = Sched.run();

  std::map<std::string, bool> IdIsMt;
  for (const auto &C : Batch)
    IdIsMt[C.Id] = C.Multithreaded;

  FleetRates R;
  R.WallSeconds = Timer.seconds();
  for (const Campaign &C : FR.Campaigns) {
    bool Mt = IdIsMt[C.BugId];
    (Mt ? R.MtBuckets : R.StBuckets) += 1;
    if (C.Report.Success)
      (Mt ? R.MtReproduced : R.StReproduced) += 1;
    if (C.Report.Sched.Used)
      ++R.SchedRescues;
  }
  return R;
}

} // namespace

int main(int argc, char **argv) {
  bool Quick = false;
  uint64_t Seed = 20260809;
  unsigned Count = 220;
  bench::JsonReporter Json("bench_gen_corpus");
  for (int I = 1; I < argc; ++I) {
    if (int R = Json.parseArg(argc, argv, I)) {
      if (R < 0)
        return 2;
    } else if (!std::strcmp(argv[I], "--quick")) {
      Quick = true;
    } else if (!std::strcmp(argv[I], "--seed") && I + 1 < argc) {
      Seed = std::strtoull(argv[++I], nullptr, 10);
    } else if (!std::strcmp(argv[I], "--count") && I + 1 < argc) {
      Count = static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
    } else {
      std::printf("usage: bench_gen_corpus [--quick] [--seed N] [--count N] "
                  "[--json FILE]\n");
      return 2;
    }
  }

  bool Ok = true;

  //===--- Gate 1: generation scale + determinism ------------------------===
  gen::GenConfig GC;
  GC.Seed = Seed;
  GC.Count = Count;
  Stopwatch GenTimer;
  std::vector<gen::GeneratedCampaign> Corpus = gen::generateCorpus(GC);
  double GenSeconds = GenTimer.seconds();

  std::set<gen::BugClass> Classes;
  unsigned ConcCampaigns = 0;
  uint64_t SourceBytes = 0;
  for (const auto &C : Corpus) {
    Classes.insert(C.Class);
    if (C.Multithreaded)
      ++ConcCampaigns;
    SourceBytes += C.Source.size();
  }
  unsigned ConcClasses = 0;
  for (gen::BugClass C : Classes)
    if (gen::bugClassMultithreaded(C))
      ++ConcClasses;

  std::vector<gen::GeneratedCampaign> Again = gen::generateCorpus(GC);
  bool Deterministic = Again.size() == Corpus.size();
  for (size_t I = 0; Deterministic && I < Corpus.size(); ++I)
    Deterministic = gen::serializeCampaign(Again[I]) ==
                    gen::serializeCampaign(Corpus[I]);

  std::printf("generate: %zu campaigns, %zu classes (%u concurrency), "
              "%llu source bytes, %.2fs, deterministic=%d\n",
              Corpus.size(), Classes.size(), ConcClasses,
              static_cast<unsigned long long>(SourceBytes), GenSeconds,
              Deterministic ? 1 : 0);
  if (Corpus.size() < 200 || Classes.size() < 8 || ConcClasses < 3 ||
      !Deterministic) {
    std::printf("GATE FAILED: corpus scale/coverage/determinism\n");
    Ok = false;
  }
  Json.add("generate")
      .param("seed", Seed)
      .param("count", Count)
      .metric("campaigns", static_cast<uint64_t>(Corpus.size()))
      .metric("classes", static_cast<uint64_t>(Classes.size()))
      .metric("concurrency_classes", ConcClasses)
      .metric("concurrency_campaigns", ConcCampaigns)
      .metric("source_bytes", SourceBytes)
      .metric("wall_s", GenSeconds)
      .metric("deterministic", static_cast<uint64_t>(Deterministic));

  //===--- Gate 2: fleet reconstruction rates ----------------------------===
  // One batch per class keeps the bench bounded while exercising every
  // planter; the fleet dedups each campaign's failures into buckets and
  // reconstructs bucket by bucket.
  unsigned PerClass = Quick ? 2 : 4;
  std::vector<gen::GeneratedCampaign> Batch;
  std::map<gen::BugClass, unsigned> Taken;
  for (const auto &C : Corpus)
    if (Taken[C.Class]++ < PerClass)
      Batch.push_back(C);

  FleetRates FR = runFleetOverCorpus(Batch, /*Jobs=*/4,
                                     /*RunsPerMachine=*/80);
  double StRate = FR.StBuckets ? double(FR.StReproduced) / FR.StBuckets : 0;
  double MtRate = FR.MtBuckets ? double(FR.MtReproduced) / FR.MtBuckets : 0;
  std::printf("fleet: %u campaigns -> ST %u/%u (%.0f%%), MT %u/%u (%.0f%%), "
              "%u sched rescues, %.2fs\n",
              static_cast<unsigned>(Batch.size()), FR.StReproduced,
              FR.StBuckets, 100 * StRate, FR.MtReproduced, FR.MtBuckets,
              100 * MtRate, FR.SchedRescues, FR.WallSeconds);
  if (StRate < 0.9 || MtRate < 0.6) {
    std::printf("GATE FAILED: reconstruction rates (need ST>=90%%, MT>=60%%)\n");
    Ok = false;
  }
  Json.add("fleet")
      .param("campaigns", static_cast<uint64_t>(Batch.size()))
      .param("jobs", 4u)
      .param("runs_per_machine", 80u)
      .metric("st_buckets", FR.StBuckets)
      .metric("st_reproduced", FR.StReproduced)
      .metric("st_rate", StRate)
      .metric("mt_buckets", FR.MtBuckets)
      .metric("mt_reproduced", FR.MtReproduced)
      .metric("mt_rate", MtRate)
      .metric("wall_s", FR.WallSeconds);

  //===--- Gate 3: schedule search rescues a race ------------------------===
  // Tie-break retries off forces validation failures onto the schedule-
  // search path; the planted data race couples an input byte to a racily
  // read cursor, so some (campaign, seed) pairs reconstruct an input that
  // only fails under the interleaving symex assumed — exactly what the
  // Phase A order search recovers.
  gen::GenConfig RaceGC;
  RaceGC.Seed = 11;
  RaceGC.Count = Quick ? 30 : 60;
  RaceGC.ClassMask =
      (1u << static_cast<unsigned>(gen::BugClass::DataRace)) |
      (1u << static_cast<unsigned>(gen::BugClass::LostUpdate)) |
      (1u << static_cast<unsigned>(gen::BugClass::Deadlock));
  std::vector<gen::GeneratedCampaign> RaceCorpus = gen::generateCorpus(RaceGC);

  Stopwatch SchedTimer;
  unsigned Rescues = 0, ExplicitRescues = 0, Driven = 0, WitnessReplays = 0;
  for (const auto &C : RaceCorpus) {
    if (C.Class != gen::BugClass::DataRace)
      continue;
    BugSpec Spec = gen::toBugSpec(C);
    std::unique_ptr<Module> M = compileBug(Spec);
    for (uint64_t K = 1; K <= 4; ++K) {
      DriverConfig DC;
      DC.Seed = K * 7919;
      DC.Vm.ChunkSize = Spec.VmChunkSize;
      DC.Solver.WorkBudget = Spec.SolverWorkBudget;
      DC.MaxTieBreakRetries = 0;
      ReconstructionDriver Driver(*M, DC);
      ReconstructionReport R = Driver.reconstruct(Spec.ProductionInput);
      ++Driven;
      if (!R.Success || !R.Sched.Used)
        continue;
      ++Rescues;
      if (R.Sched.ExplicitOrder)
        ++ExplicitRescues;
      // The persisted witness must replay the failure on a fresh VM.
      VmConfig VC;
      VC.ChunkSize = Spec.VmChunkSize;
      VC.ScheduleSeed = R.Sched.Seed;
      if (R.Sched.ExplicitOrder)
        VC.ExplicitSchedule = &R.Sched.Order;
      Interpreter Replay(*M, VC);
      RunResult RR = Replay.run(R.TestCase);
      if (RR.Status == ExitStatus::Failure &&
          RR.Failure.sameFailure(R.Failure))
        ++WitnessReplays;
    }
  }
  double SchedSeconds = SchedTimer.seconds();
  std::printf("schedsearch: %u campaigns driven, %u rescues (%u explicit), "
              "%u witnesses replayed, %.2fs\n",
              Driven, Rescues, ExplicitRescues, WitnessReplays, SchedSeconds);
  if (Rescues < 1 || WitnessReplays != Rescues) {
    std::printf("GATE FAILED: schedule search must rescue >=1 race campaign "
                "with a replayable witness\n");
    Ok = false;
  }
  Json.add("schedsearch")
      .param("seed", RaceGC.Seed)
      .param("count", RaceGC.Count)
      .metric("driven", Driven)
      .metric("rescues", Rescues)
      .metric("explicit_rescues", ExplicitRescues)
      .metric("witness_replays", WitnessReplays)
      .metric("wall_s", SchedSeconds);

  if (int R = Json.flush())
    return R;
  std::printf(Ok ? "all gates passed\n" : "GATES FAILED\n");
  return Ok ? 0 : 1;
}
