//===- bench_fig6_overhead.cpp - Reproduces Fig. 6 ------------------------------===//
//
// Runtime overhead of ER's control+data tracing vs a full record/replay
// baseline (rr), per application, averaged over 10 runs of each program's
// performance benchmark with standard error — the paper's Fig. 6.
//
// ER's overhead is modelled from the measured trace bytes (see
// trace/OverheadModel.h); rr's from the measured non-determinism events
// (see baselines/RecordReplay.h). Expected shape: ER mean ~0.3% (max
// ~1.1%), rr tens of percent (max >100% for multithreaded programs).
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "baselines/RecordReplay.h"
#include "er/ConstraintGraph.h"
#include "er/Driver.h"
#include "er/Instrumenter.h"
#include "er/Selection.h"
#include "support/Rng.h"
#include "trace/OverheadModel.h"
#include "workloads/Workloads.h"

#include <cmath>
#include <cstdio>
#include <vector>

using namespace er;

namespace {

struct Stat {
  double Mean = 0, StdErr = 0;
};

Stat meanStdErr(const std::vector<double> &Xs) {
  Stat S;
  for (double X : Xs)
    S.Mean += X;
  S.Mean /= Xs.size();
  double Var = 0;
  for (double X : Xs)
    Var += (X - S.Mean) * (X - S.Mean);
  Var /= Xs.size() > 1 ? Xs.size() - 1 : 1;
  S.StdErr = std::sqrt(Var / Xs.size());
  return S;
}

} // namespace

int main(int argc, char **argv) {
  bench::JsonReporter Json("bench_fig6_overhead");
  for (int I = 1; I < argc; ++I) {
    int R = Json.parseArg(argc, argv, I);
    if (R < 0)
      return 2;
    if (R == 0) {
      std::printf("usage: bench_fig6_overhead [--json FILE]\n");
      return 2;
    }
  }

  std::printf("Fig. 6: runtime overhead of ER recording vs rr (10 runs, "
              "mean +/- stderr)\n");
  std::printf("%-22s %12s %14s %12s %14s\n", "Application", "ER mean %",
              "ER stderr", "rr mean %", "rr stderr");
  std::printf("%.90s\n",
              "----------------------------------------------------------"
              "--------------------------------");

  double ErSum = 0, ErMax = 0, RrSum = 0, RrMax = 0;
  unsigned N = 0;

  for (const auto &Spec : allBugSpecs()) {
    auto M = compileBug(Spec);

    // Run the full ER loop once so the deployment carries the same
    // instrumentation as the *last* failure occurrence (the paper measures
    // the last iteration's recording overhead).
    {
      DriverConfig DC;
      DC.Solver.WorkBudget = Spec.SolverWorkBudget;
      DC.Vm.ChunkSize = Spec.VmChunkSize;
      DC.Seed = 20260706;
      DC.MaxIterations = 16;
      ReconstructionDriver Driver(*M, DC);
      Driver.reconstruct([&](Rng &R) { return Spec.ProductionInput(R); });
    }

    Rng PerfRng(7);
    Rng NoiseRng(13);
    OverheadParams ErParams;
    ErParams.NoiseStdDev = Spec.MeasurementNoise;
    RrOverheadParams RrParams;
    RrParams.NoiseStdDev = Spec.MeasurementNoise * 10;

    std::vector<double> ErPct, RrPct;
    for (int Run = 0; Run < 10; ++Run) {
      ProgramInput In = Spec.PerfInput(PerfRng);
      VmConfig VC;
      VC.ChunkSize = Spec.VmChunkSize;
      VC.ScheduleSeed = PerfRng.next();

      // ER: trace the run, model the recording overhead.
      TraceConfig TC;
      TraceRecorder Rec(TC);
      Interpreter VM(*M, VC);
      RunResult RR = VM.run(In, &Rec);
      ErPct.push_back(
          erOverheadPercent(RR.InstrCount, Rec.getStats(), ErParams,
                            NoiseRng));

      // rr: record all non-determinism, model the interception overhead.
      FullRecordReplay RrBaseline(*M);
      RecordLog Log = RrBaseline.record(In, VC);
      RrPct.push_back(FullRecordReplay::overheadPercent(Log.Recorded,
                                                        RrParams, NoiseRng));
    }

    Stat Er = meanStdErr(ErPct);
    Stat Rr = meanStdErr(RrPct);
    std::printf("%-22s %11.3f%% %14.3f %11.1f%% %14.2f\n", Spec.App.c_str(),
                Er.Mean, Er.StdErr, Rr.Mean, Rr.StdErr);
    std::fflush(stdout);
    Json.add("overhead")
        .param("bug", Spec.Id)
        .param("app", Spec.App)
        .metric("er_mean_pct", Er.Mean)
        .metric("er_stderr", Er.StdErr)
        .metric("rr_mean_pct", Rr.Mean)
        .metric("rr_stderr", Rr.StdErr);

    ErSum += Er.Mean;
    ErMax = std::max(ErMax, Er.Mean);
    RrSum += Rr.Mean;
    RrMax = std::max(RrMax, Rr.Mean);
    ++N;
  }

  std::printf("\nER:  mean %.3f%%, max %.3f%%   (paper: 0.3%% mean, 1.1%% "
              "max)\n",
              ErSum / N, ErMax);
  std::printf("rr:  mean %.1f%%, max %.1f%%   (paper: 48.0%% mean, 142.2%% "
              "max)\n",
              RrSum / N, RrMax);
  Json.add("summary")
      .metric("er_mean_pct", ErSum / N)
      .metric("er_max_pct", ErMax)
      .metric("rr_mean_pct", RrSum / N)
      .metric("rr_max_pct", RrMax);
  return Json.flush();
}
