//===- bench_mimic_localization.cpp - Section 5.4 case study ----------------------===//
//
// Invariant-based failure localization on top of ER (the MIMIC/Daikon case
// study): likely invariants are inferred from 4 passing executions of the
// coreutils analogs (od, pr); ER then reconstructs a production failure,
// and the invariant checker flags the violated invariants on (a) the
// original failing run and (b) ER's reconstructed test case. The paper's
// claim: both identify the same potential root causes.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "er/Driver.h"
#include "invariants/Invariants.h"
#include "lang/Codegen.h"
#include "support/Rng.h"

#include <cstdio>

using namespace er;

namespace {

// coreutils od analog: octal/hex dump. BUG (bug-coreutils 2007-08): the
// field-width computation for an unusual format spec returns 0, and the
// formatter indexes its digit buffer at width-1 -> out-of-bounds.
const char *OdSource = R"(
global out_count: i64[1];

fn field_width(base: i64) -> i64 {
  if (base == 8) { return 3; }
  if (base == 16) { return 2; }
  // BUG: unknown bases fall through with width 0 (should be rejected).
  return 0;
}

fn emit_field(v: i64, base: i64) -> i64 {
  var digits: u8[8];
  var w: i64 = field_width(base);
  var x: i64 = v;
  var i: i64 = w - 1;
  digits[i] = 0;          // OOB when w == 0 -> i == -1.
  while (i >= 0) {
    digits[i] = ('0' + (x % base) as u8) as u8;
    x = x / base;
    i = i - 1;
  }
  out_count[0] = out_count[0] + w;
  return digits[0] as i64;
}

fn main() -> i64 {
  // Input: format byte ('o' octal, 'x' hex, others unchecked), then data.
  var fmt: u8 = input_byte();
  var base: i64 = 8;
  if (fmt == 'x') { base = 16; }
  if (fmt != 'o' && fmt != 'x') { base = fmt as i64 % 7; }
  var total: i64 = 0;
  var n: i64 = input_size() - 1;
  for (var k: i64 = 0; k < n; k = k + 1) {
    total = total + emit_field(input_byte() as i64, base);
  }
  return total;
}
)";

// coreutils pr analog: paginate input into columns. BUG (bug-coreutils
// 2008-04): the per-column width for single-column layouts divides by
// (cols - 1) -> division by zero when cols == 1.
const char *PrSource = R"(
global lines_out: i64[1];

fn col_width(page_width: i64, cols: i64) -> i64 {
  // BUG: separator arithmetic divides by (cols - 1); correct only for
  // cols >= 2.
  return (page_width - (cols - 1)) / (cols - 1);
}

fn paginate(n: i64, cols: i64) -> i64 {
  var w: i64 = col_width(72, cols);
  var produced: i64 = 0;
  for (var i: i64 = 0; i < n; i = i + 1) {
    var c: u8 = input_byte();
    produced = produced + ((c as i64) % (w + 1));
  }
  lines_out[0] = lines_out[0] + produced;
  return produced;
}

fn main() -> i64 {
  var cols: i64 = input_byte() as i64;
  if (cols < 1) { cols = 1; }
  if (cols > 9) { cols = 9; }
  var n: i64 = input_size() - 1;
  return paginate(n, cols);
}
)";

struct CaseStudy {
  const char *Name;
  const char *Source;
  ProgramInput PassingInputs[4];
  ProgramInput FailingInput;
};

void runCase(const CaseStudy &CS, bench::JsonReporter &Json) {
  std::printf("=== %s ===\n", CS.Name);
  CompileResult CR = compileMiniLang(CS.Source);
  if (!CR.ok()) {
    std::printf("compile error: %s\n", CR.Error.c_str());
    return;
  }
  Module &M = *CR.M;

  // Phase 1: likely invariants from 4 passing executions (as in the
  // paper's case study).
  InvariantEngine Engine(M);
  for (const ProgramInput &In : CS.PassingInputs) {
    bool Ok = Engine.observePassingRun(In, VmConfig());
    if (!Ok)
      std::printf("  (warning: a passing run failed)\n");
  }
  Engine.infer();
  std::printf("inferred %zu likely invariants from 4 passing runs\n",
              Engine.invariants().size());

  // Phase 2: the production failure, reconstructed by ER.
  DriverConfig DC;
  DC.Seed = 99;
  ReconstructionDriver Driver(M, DC);
  ProgramInput Failing = CS.FailingInput;
  ReconstructionReport Report = Driver.reconstruct([&](Rng &) {
    return Failing;
  });
  if (!Report.Success) {
    std::printf("reconstruction failed: %s\n", Report.FailureDetail.c_str());
    return;
  }
  std::printf("ER reconstructed the failure (%s) in %u occurrence(s)\n",
              failureKindName(Report.Failure.Kind), Report.Occurrences);

  // Phase 3: violations on the original failing run vs on ER's
  // reconstructed test case.
  VmConfig VC;
  auto Original = Engine.checkFailingRun(CS.FailingInput, VC);
  VC.ScheduleSeed = Report.ReplayScheduleSeed;
  auto Reconstructed = Engine.checkFailingRun(Report.TestCase, VC);

  auto Print = [](const char *Label,
                  const std::vector<InvariantViolation> &Vs) {
    std::printf("%s: %zu violation(s)\n", Label, Vs.size());
    for (size_t I = 0; I < Vs.size() && I < 4; ++I)
      std::printf("  [%zu] %s: %s  (observed %s)\n", I + 1,
                  Vs[I].Inv.Point.c_str(), Vs[I].Inv.Text.c_str(),
                  Vs[I].Observed.c_str());
  };
  Print("original failing input   ", Original);
  Print("ER-reconstructed test    ", Reconstructed);

  // The paper's claim: the reconstructed execution identifies the same
  // potential root causes. ER only guarantees control-flow equivalence, so
  // incidental data values may add extra violations; the check is that
  // every invariant violated by the original failure is also violated by
  // the reconstruction.
  bool Covers = true;
  for (const auto &O : Original) {
    bool Found = false;
    for (const auto &Rv : Reconstructed)
      if (Rv.Inv.Point == O.Inv.Point && Rv.Inv.Text == O.Inv.Text)
        Found = true;
    Covers = Covers && Found;
  }
  std::printf("reconstruction flags all of the original's root-cause "
              "invariants: %s (%zu extra incidental violation(s))\n\n",
              Covers ? "yes" : "NO",
              Reconstructed.size() >= Original.size()
                  ? Reconstructed.size() - Original.size()
                  : 0);
  Json.add("case_study")
      .param("case", CS.Name)
      .metric("invariants", static_cast<uint64_t>(Engine.invariants().size()))
      .metric("occurrences", Report.Occurrences)
      .metric("original_violations", static_cast<uint64_t>(Original.size()))
      .metric("reconstructed_violations",
              static_cast<uint64_t>(Reconstructed.size()))
      .metric("covers_root_causes", static_cast<uint64_t>(Covers));
}

} // namespace

int main(int argc, char **argv) {
  bench::JsonReporter Json("bench_mimic_localization");
  for (int I = 1; I < argc; ++I) {
    int R = Json.parseArg(argc, argv, I);
    if (R < 0)
      return 2;
    if (R == 0) {
      std::printf("usage: bench_mimic_localization [--json FILE]\n");
      return 2;
    }
  }

  std::printf("Section 5.4: invariant-based failure localization (MIMIC "
              "case study)\n\n");

  CaseStudy Od;
  Od.Name = "coreutils od analog";
  Od.Source = OdSource;
  Od.PassingInputs[0].Bytes = {'o', 10, 20, 30};
  Od.PassingInputs[1].Bytes = {'x', 200, 100};
  Od.PassingInputs[2].Bytes = {'o', 1, 2, 3, 4, 5};
  Od.PassingInputs[3].Bytes = {'x', 9};
  Od.FailingInput.Bytes = {'q', 10, 20}; // Unknown format -> base 5... width 0.
  runCase(Od, Json);

  CaseStudy Pr;
  Pr.Name = "coreutils pr analog";
  Pr.Source = PrSource;
  Pr.PassingInputs[0].Bytes = {3, 'a', 'b', 'c', 'd'};
  Pr.PassingInputs[1].Bytes = {2, 'x', 'y'};
  Pr.PassingInputs[2].Bytes = {4, 'l', 'i', 'n', 'e'};
  Pr.PassingInputs[3].Bytes = {5, 'z', 'z', 'z'};
  Pr.FailingInput.Bytes = {1, 'a', 'b'}; // Single column -> cols-1 == 0.
  runCase(Pr, Json);

  return Json.flush();
}
