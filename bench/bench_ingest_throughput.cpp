//===- bench_ingest_throughput.cpp - Spool ingest throughput ----------------===//
//
// Measures the failure-report ingestion pipeline (src/ingest/,
// docs/INGEST.md) end to end: encode -> spool publish -> collect ->
// scheduler submit, at 1/2/4 concurrent writer threads sharing one spool
// directory.
//
// Reports are synthetic (a handful of failure buckets, no VM runs) so the
// numbers isolate the ingest layer: CRC'd encoding, temp+rename publishes,
// claim-by-rename, validation, dedup, and submission. Each configuration
// also injects one bit-flipped file and one redelivered (copied) file to
// exercise the quarantine and dedup paths under load; the bench fails if
// either goes uncounted or if any record is lost or double-counted.
//
// Usage: bench_ingest_throughput [--records N] [--batch N] [--json FILE]
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "ingest/ReportCollector.h"
#include "ingest/ReportSpool.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace er;
namespace fs = std::filesystem;

namespace {

const char *Bugs[] = {"Bash-108885", "SQLite-4e8e485", "Pbzip2",
                      "Memcached-2019-11596"};

/// Synthetic failure: a few distinct buckets per writer so dedup-by-
/// signature in the scheduler has real work without dominating the time.
FleetFailureReport makeReport(uint64_t Machine, uint64_t I) {
  FleetFailureReport R;
  R.BugId = Bugs[I % (sizeof(Bugs) / sizeof(Bugs[0]))];
  R.Failure.Kind = static_cast<FailureKind>(1 + I % 3); // skip None

  R.Failure.InstrGlobalId = static_cast<unsigned>(100 + I % 16);
  R.Failure.CallStack = {static_cast<unsigned>(1 + I % 8),
                         static_cast<unsigned>(Machine)};
  R.Failure.Tid = static_cast<uint32_t>(I % 4);
  R.Failure.Message = "synthetic ingest-bench failure";
  return R;
}

double seconds(std::chrono::steady_clock::time_point From,
               std::chrono::steady_clock::time_point To) {
  return std::chrono::duration<double>(To - From).count();
}

struct Result {
  unsigned Writers = 0;
  double WriteSeconds = 0;
  double DrainSeconds = 0;
  CollectorStats Stats;
  bool CountsOk = false;
};

Result runOnce(unsigned Writers, uint64_t RecordsPerWriter, uint64_t Batch,
               const std::string &Spool) {
  fs::remove_all(Spool);
  fs::create_directories(Spool);

  // Phase 1: concurrent writers, one machine id each, publishing
  // RecordsPerWriter records in Batch-sized files.
  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (unsigned W = 0; W < Writers; ++W)
    Threads.emplace_back([&, W] {
      SpoolWriter Writer(Spool, /*MachineId=*/W + 1);
      for (uint64_t I = 0; I < RecordsPerWriter; ++I) {
        Writer.append(makeReport(W + 1, I));
        if ((I + 1) % Batch == 0)
          Writer.flush();
      }
      Writer.flush();
    });
  for (std::thread &T : Threads)
    T.join();
  auto T1 = std::chrono::steady_clock::now();

  // Inject the failure modes the collector must absorb: redeliver the
  // first published file verbatim (dedup), and bit-flip a byte deep in a
  // copy of the second (quarantine).
  std::vector<std::string> Names = listSpoolFiles(Spool);
  uint64_t Expected = Writers * RecordsPerWriter;
  uint64_t ExpectedDups = 0, CorruptRecords = 0;
  bool Injected = Names.size() >= 2;
  if (Injected) {
    fs::copy_file(fs::path(Spool) / Names[0],
                  fs::path(Spool) / "redelivered.ers");
    ExpectedDups = std::min<uint64_t>(Batch, RecordsPerWriter);

    std::ifstream IS(fs::path(Spool) / Names[1], std::ios::binary);
    std::string Bytes((std::istreambuf_iterator<char>(IS)),
                      std::istreambuf_iterator<char>());
    IS.close();
    Bytes[Bytes.size() / 2] ^= 0x10;
    std::ofstream OS(fs::path(Spool) / Names[1],
                     std::ios::binary | std::ios::trunc);
    OS.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    OS.close();
    CorruptRecords = std::min<uint64_t>(Batch, RecordsPerWriter);
  }

  // Phase 2: one collector drains everything into a scheduler.
  FleetScheduler Sched((FleetConfig()));
  ReportCollector Collector({.SpoolDir = Spool});
  auto T2 = std::chrono::steady_clock::now();
  std::string Err;
  bool Ok = Collector.drainInto(Sched, &Err);
  auto T3 = std::chrono::steady_clock::now();
  if (!Ok)
    std::fprintf(stderr, "drain failed: %s\n", Err.c_str());

  Result R;
  R.Writers = Writers;
  R.WriteSeconds = seconds(T0, T1);
  R.DrainSeconds = seconds(T2, T3);
  R.Stats = Collector.getStats();

  // Exactly-once accounting: everything published minus the quarantined
  // file's records must be submitted, duplicates dropped, nothing extra.
  uint64_t ExpectSubmitted = Expected - CorruptRecords;
  uint64_t Occurrences = 0;
  for (const Campaign &C : Sched.getCampaigns())
    Occurrences += C.Occurrences;
  R.CountsOk = Ok && R.Stats.FilesQuarantined == (Injected ? 1u : 0u) &&
               R.Stats.DuplicatesDropped == ExpectedDups &&
               R.Stats.Submitted == ExpectSubmitted &&
               Occurrences == ExpectSubmitted;
  fs::remove_all(Spool);
  return R;
}

} // namespace

int main(int argc, char **argv) {
  uint64_t Records = 20000; // per writer
  uint64_t Batch = 500;     // records per spool file
  bench::JsonReporter Json("bench_ingest_throughput");
  for (int I = 1; I < argc; ++I) {
    if (int R = Json.parseArg(argc, argv, I)) {
      if (R < 0)
        return 2;
    } else if (!std::strcmp(argv[I], "--records") && I + 1 < argc)
      Records = std::strtoull(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--batch") && I + 1 < argc)
      Batch = std::strtoull(argv[++I], nullptr, 10);
    else {
      std::printf("usage: bench_ingest_throughput [--records N] [--batch N] "
                  "[--json FILE]\n");
      return 2;
    }
  }
  if (Records == 0 || Batch == 0) {
    std::printf("--records and --batch must be positive\n");
    return 2;
  }

  std::string Spool =
      (fs::temp_directory_path() / "er_bench_ingest_spool").string();

  std::printf("ingest throughput: %llu records/writer, %llu records/file, "
              "1 corrupted + 1 redelivered file injected per run\n\n",
              (unsigned long long)Records, (unsigned long long)Batch);
  std::printf("%8s %12s %12s %13s %13s %11s %7s %10s %7s\n", "writers",
              "write (s)", "drain (s)", "write rec/s", "drain rec/s",
              "quarantined", "dedup", "submitted", "counts");

  bool AllOk = true;
  for (unsigned Writers : {1u, 2u, 4u}) {
    Result R = runOnce(Writers, Records, Batch, Spool);
    double Total = Writers * (double)Records;
    std::printf("%8u %12.3f %12.3f %13.0f %13.0f %11llu %7llu %10llu %7s\n",
                R.Writers, R.WriteSeconds, R.DrainSeconds,
                R.WriteSeconds > 0 ? Total / R.WriteSeconds : 0,
                R.DrainSeconds > 0 ? Total / R.DrainSeconds : 0,
                (unsigned long long)R.Stats.FilesQuarantined,
                (unsigned long long)R.Stats.DuplicatesDropped,
                (unsigned long long)R.Stats.Submitted,
                R.CountsOk ? "ok" : "FAIL");
    Json.add("ingest_run")
        .param("writers", Writers)
        .param("records_per_writer", Records)
        .param("records_per_file", Batch)
        .metric("write_s", R.WriteSeconds)
        .metric("drain_s", R.DrainSeconds)
        .metric("write_rec_per_s",
                R.WriteSeconds > 0 ? Total / R.WriteSeconds : 0)
        .metric("drain_rec_per_s",
                R.DrainSeconds > 0 ? Total / R.DrainSeconds : 0)
        .metric("quarantined", R.Stats.FilesQuarantined)
        .metric("duplicates_dropped", R.Stats.DuplicatesDropped)
        .metric("submitted", R.Stats.Submitted)
        .metric("counts_ok", static_cast<uint64_t>(R.CountsOk));
    AllOk = AllOk && R.CountsOk;
  }

  std::printf("\nexactly-once accounting under corruption + redelivery: %s\n",
              AllOk ? "yes" : "NO");
  if (int Rc = Json.flush())
    return Rc;
  return AllOk ? 0 : 1;
}
