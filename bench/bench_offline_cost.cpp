//===- bench_offline_cost.cpp - Section 5.3 offline cost --------------------------===//
//
// The offline side of ER: constraint-graph sizes, key-data-value selection
// time, and shepherded-symbolic-execution time/memory proxies across the
// bug suite. The paper reports graphs of up to ~40K nodes, bottleneck/
// recording-set computation under 15 seconds, <=10GB memory, and symbex
// times from 0.06 to 111 minutes; the reproduced claims are that
// selection cost is negligible next to symbex and that graph sizes stay
// modest.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "er/ConstraintGraph.h"
#include "er/Driver.h"
#include "er/Instrumenter.h"
#include "er/Selection.h"
#include "support/Timer.h"
#include "symex/SymExecutor.h"
#include "vm/Interpreter.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace er;

int main(int argc, char **argv) {
  bench::JsonReporter Json("bench_offline_cost");
  for (int I = 1; I < argc; ++I) {
    int R = Json.parseArg(argc, argv, I);
    if (R < 0)
      return 2;
    if (R == 0) {
      std::printf("usage: bench_offline_cost [--json FILE]\n");
      return 2;
    }
  }

  std::printf("Offline costs per bug: constraint graph size, selection "
              "time, symbex time, expression arena\n");
  std::printf("%-22s %10s %10s %12s %12s %12s %12s\n", "Bug", "graph nodes",
              "edges", "select (s)", "symbex (s)", "expr nodes",
              "solver work");
  std::printf("%.110s\n",
              "----------------------------------------------------------"
              "----------------------------------------------------");

  uint64_t MaxNodes = 0;
  double MaxSelect = 0;
  for (const auto &Spec : allBugSpecs()) {
    auto M = compileBug(Spec);
    Rng R(20260706);
    VmConfig VC;
    VC.ChunkSize = Spec.VmChunkSize;

    // One traced failing run.
    TraceConfig TC;
    TraceRecorder Rec(TC);
    RunResult RR;
    for (;;) {
      ProgramInput In = Spec.ProductionInput(R);
      VC.ScheduleSeed = R.next();
      TraceRecorder Rec2(TC);
      Interpreter VM(*M, VC);
      RR = VM.run(In, &Rec2);
      if (RR.Status == ExitStatus::Failure) {
        Rec = std::move(Rec2);
        break;
      }
    }

    ExprContext Ctx;
    SolverConfig SC;
    SC.WorkBudget = Spec.SolverWorkBudget;
    ConstraintSolver Solver(Ctx, SC);
    ShepherdedExecutor SE(*M, Ctx, Solver, SymexConfig());
    Stopwatch SymexW;
    SymexResult SR = SE.run(Rec.decode(), RR.Failure);
    double SymexS = SymexW.seconds();

    Stopwatch SelW;
    ConstraintGraph Graph(SR.Snapshot);
    KeyValueSelector Sel(Graph);
    RecordingPlan Plan = Sel.computeRecordingSet();
    double SelS = SelW.seconds();
    (void)Plan;

    std::printf("%-22s %10llu %10llu %12.4f %12.2f %12llu %12llu\n",
                Spec.Id.c_str(),
                static_cast<unsigned long long>(Graph.numNodes()),
                static_cast<unsigned long long>(Graph.numEdges()), SelS,
                SymexS,
                static_cast<unsigned long long>(
                    Ctx.getStats().NodesCreated),
                static_cast<unsigned long long>(SR.SolverWork));
    std::fflush(stdout);
    Json.add("offline_cost")
        .param("bug", Spec.Id)
        .metric("graph_nodes", Graph.numNodes())
        .metric("graph_edges", Graph.numEdges())
        .metric("select_s", SelS)
        .metric("symex_s", SymexS)
        .metric("expr_nodes", Ctx.getStats().NodesCreated)
        .metric("solver_work", SR.SolverWork);
    MaxNodes = std::max(MaxNodes, Graph.numNodes());
    MaxSelect = std::max(MaxSelect, SelS);
  }

  std::printf("\nLargest constraint graph: %llu nodes (paper: ~40K). "
              "Slowest selection: %.3fs (paper: <=15s). Selection cost is "
              "negligible next to symbex, as in the paper.\n",
              static_cast<unsigned long long>(MaxNodes), MaxSelect);
  return Json.flush();
}
