//===- bench_daemon_latency.cpp - Report-arrival -> scheduled latency -------===//
//
// Measures the collector daemon's ingestion latency (src/ingest/
// CollectorDaemon, docs/INGEST.md): the time between a machine publishing
// a failure report into the spool and the daemon's drain submitting it to
// the fleet scheduler, across drain intervals.
//
// The timeline runs on a VirtualClock so the sweep is deterministic and
// finishes in milliseconds of wall time: reports "arrive" at seeded random
// virtual times across a simulated window, the daemon's cycle cadence is
// simulated by advancing the clock by the drain interval between runCycle
// calls, and each record's latency is the virtual time from arrival to the
// drain that submitted it. The per-cycle *CPU* cost of the real drain +
// checkpoint work is measured on the wall clock alongside.
//
// The bench fails if any record is lost, duplicated, or quarantined —
// latency numbers for a lossy daemon would be meaningless.
//
// --listen HOST:PORT mounts the daemon's live telemetry endpoint and runs
// a 1 Hz /metrics scraper alongside the sweep — the configuration the
// listener's "no measurable drag" claim (docs/OBSERVABILITY.md) is
// checked against. The scraper is wall-clock (scrape cost is real even
// when the timeline is virtual); the watchdog stays disabled so nothing
// off the control thread touches the VirtualClock.
//
// Usage: bench_daemon_latency [--reports N] [--window-ms N]
//                             [--listen HOST:PORT] [--json FILE]
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "ingest/CollectorDaemon.h"
#include "ingest/ReportSpool.h"
#include "net/HttpServer.h"
#include "support/Rng.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

using namespace er;
namespace fs = std::filesystem;

namespace {

/// Arrival of one published report, at a virtual timestamp.
struct Arrival {
  uint64_t AtNs = 0;
  uint64_t Machine = 0;
};

/// Unknown bug ids keep campaigns trivial (they complete inline), so the
/// measurement isolates the daemon's drain/submit path rather than
/// reconstruction work.
FleetFailureReport makeReport(uint64_t Machine, uint64_t Seq) {
  FleetFailureReport R;
  R.BugId = "synthetic-latency-" + std::to_string(Seq % 6);
  R.MachineId = Machine;
  R.Sequence = Seq;
  R.Failure.Kind = FailureKind::NullDeref;
  R.Failure.InstrGlobalId = static_cast<unsigned>(10 + Seq % 6);
  R.Failure.CallStack = {static_cast<unsigned>(1 + Seq % 4)};
  R.Failure.Message = "daemon latency bench";
  return R;
}

struct Result {
  uint64_t IntervalMs = 0;
  uint64_t Cycles = 0;
  uint64_t Records = 0;
  double MeanMs = 0, P50Ms = 0, P95Ms = 0, MaxMs = 0;
  double DrainCpuMsPerCycle = 0;
  bool CountsOk = false;
  uint64_t Scrapes = 0;        ///< Successful /metrics GETs (--listen only).
  uint64_t ScrapeFailures = 0; ///< Failed or non-200 scrapes.
};

double percentile(const std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Idx = static_cast<size_t>(P * (Sorted.size() - 1));
  return Sorted[Idx];
}

Result runOnce(uint64_t IntervalMs, uint64_t Reports, uint64_t WindowMs,
               const std::string &Root, const std::string &Listen) {
  fs::remove_all(Root);
  const std::string Spool = Root + "/spool";
  fs::create_directories(Spool);

  // Seeded arrival schedule: Reports arrivals uniform over the window,
  // round-robined across a few writer machines. Sequences stay monotonic
  // per machine (arrivals are sorted by time below) so the daemon's
  // high-water dedup sees a well-formed fleet.
  constexpr uint64_t Machines = 4;
  constexpr uint64_t StartNs = 1'000'000'000'000ULL;
  Rng R(20260807 + IntervalMs);
  std::vector<Arrival> Schedule(Reports);
  for (uint64_t I = 0; I < Reports; ++I)
    Schedule[I].AtNs = StartNs + R.nextBounded(WindowMs * 1'000'000ULL);
  std::sort(Schedule.begin(), Schedule.end(),
            [](const Arrival &A, const Arrival &B) { return A.AtNs < B.AtNs; });
  for (uint64_t I = 0; I < Reports; ++I)
    Schedule[I].Machine = 1 + I % Machines;

  VirtualClock Clock(StartNs);
  FleetConfig FC;
  FC.RootSeed = 20260807;
  FleetScheduler Sched(FC);

  DaemonConfig DC;
  DC.Collector.SpoolDir = Spool;
  DC.StateFile = Root + "/daemon.state";
  DC.DrainIntervalMs = IntervalMs;
  DC.Clock = &Clock;
  DC.Sleep = [&Clock](uint64_t Ms) { Clock.advanceNs(Ms * 1'000'000ULL); };
  DC.Listen = Listen;
  CollectorDaemon Daemon(DC, Sched);

  Result Res;
  Res.IntervalMs = IntervalMs;
  std::string Err;
  if (!Daemon.start(&Err)) {
    std::fprintf(stderr, "daemon start failed: %s\n", Err.c_str());
    return Res;
  }

  // 1 Hz wall-clock scraper against the live listener: the measured
  // sweep then carries the telemetry overhead a scraped production
  // daemon would.
  std::atomic<bool> ScraperDone{false};
  std::atomic<uint64_t> ScrapesOk{0}, ScrapesBad{0};
  std::thread Scraper;
  if (!Listen.empty() && Daemon.listenPort()) {
    std::string Host = "127.0.0.1";
    uint16_t Port = 0;
    net::parseHostPort(Listen, Host, Port);
    uint16_t Bound = Daemon.listenPort();
    Scraper = std::thread([&ScraperDone, &ScrapesOk, &ScrapesBad, Host,
                           Bound] {
      while (!ScraperDone.load(std::memory_order_acquire)) {
        net::HttpClientResponse R;
        if (net::httpGet(Host, Bound, "/metrics", R) && R.Status == 200)
          ScrapesOk.fetch_add(1, std::memory_order_relaxed);
        else
          ScrapesBad.fetch_add(1, std::memory_order_relaxed);
        for (int Tick = 0;
             Tick < 10 && !ScraperDone.load(std::memory_order_acquire);
             ++Tick)
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    });
  }

  std::vector<SpoolWriter> Writers;
  Writers.reserve(Machines);
  for (uint64_t M = 1; M <= Machines; ++M)
    Writers.emplace_back(Spool, M);
  std::vector<uint64_t> NextSeq(Machines, 1);

  std::vector<double> LatenciesMs;
  LatenciesMs.reserve(Reports);
  double DrainCpuS = 0;
  size_t Next = 0; // first unpublished arrival
  uint64_t Published = 0;

  // Cycle n runs at StartNs + n*interval; everything that arrived during
  // the preceding sleep is on disk by then, exactly as with a live daemon.
  for (uint64_t Cycle = 0;; ++Cycle) {
    uint64_t NowNs = StartNs + Cycle * IntervalMs * 1'000'000ULL;
    Clock.set(NowNs);
    std::vector<size_t> ThisCycle;
    while (Next < Schedule.size() && Schedule[Next].AtNs <= NowNs) {
      const Arrival &A = Schedule[Next];
      size_t W = A.Machine - 1;
      Writers[W].append(makeReport(A.Machine, NextSeq[W]++));
      Writers[W].flush();
      ThisCycle.push_back(Next);
      ++Next;
      ++Published;
    }

    uint64_t Before = Daemon.collectorStats().Submitted;
    auto T0 = std::chrono::steady_clock::now();
    if (!Daemon.runCycle(&Err)) {
      std::fprintf(stderr, "cycle failed: %s\n", Err.c_str());
      break;
    }
    DrainCpuS += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                               T0)
                     .count();
    uint64_t Submitted = Daemon.collectorStats().Submitted - Before;
    if (Submitted != ThisCycle.size()) {
      std::fprintf(stderr, "cycle %llu submitted %llu of %zu pending\n",
                   (unsigned long long)Cycle, (unsigned long long)Submitted,
                   ThisCycle.size());
      break;
    }
    for (size_t Idx : ThisCycle)
      LatenciesMs.push_back(double(NowNs - Schedule[Idx].AtNs) / 1e6);

    Res.Cycles = Cycle + 1;
    if (Next >= Schedule.size() && !Sched.hasPendingWork())
      break;
  }

  if (Scraper.joinable()) {
    ScraperDone.store(true, std::memory_order_release);
    Scraper.join();
  }
  Res.Scrapes = ScrapesOk.load();
  Res.ScrapeFailures = ScrapesBad.load();

  const CollectorStats &CS = Daemon.collectorStats();
  Res.Records = LatenciesMs.size();
  Res.CountsOk = Published == Reports && CS.Submitted == Reports &&
                 CS.DuplicatesDropped == 0 && CS.FilesQuarantined == 0 &&
                 Res.Records == Reports;

  std::sort(LatenciesMs.begin(), LatenciesMs.end());
  double Sum = 0;
  for (double L : LatenciesMs)
    Sum += L;
  Res.MeanMs = LatenciesMs.empty() ? 0 : Sum / LatenciesMs.size();
  Res.P50Ms = percentile(LatenciesMs, 0.50);
  Res.P95Ms = percentile(LatenciesMs, 0.95);
  Res.MaxMs = LatenciesMs.empty() ? 0 : LatenciesMs.back();
  Res.DrainCpuMsPerCycle = Res.Cycles ? DrainCpuS * 1e3 / Res.Cycles : 0;
  fs::remove_all(Root);
  return Res;
}

} // namespace

int main(int argc, char **argv) {
  uint64_t Reports = 2000;
  uint64_t WindowMs = 30000; // simulated arrival window
  std::string Listen;
  bench::JsonReporter Json("bench_daemon_latency");
  for (int I = 1; I < argc; ++I) {
    if (int R = Json.parseArg(argc, argv, I)) {
      if (R < 0)
        return 2;
    } else if (!std::strcmp(argv[I], "--reports") && I + 1 < argc)
      Reports = std::strtoull(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--window-ms") && I + 1 < argc)
      WindowMs = std::strtoull(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--listen") && I + 1 < argc)
      Listen = argv[++I];
    else {
      std::printf("usage: bench_daemon_latency [--reports N] [--window-ms N] "
                  "[--listen HOST:PORT] [--json FILE]\n");
      return 2;
    }
  }
  if (!Listen.empty()) {
    std::string Host;
    uint16_t Port = 0;
    std::string Err;
    if (!net::parseHostPort(Listen, Host, Port, &Err)) {
      std::printf("--listen: %s\n", Err.c_str());
      return 2;
    }
  }
  if (Reports == 0 || WindowMs == 0) {
    std::printf("--reports and --window-ms must be positive\n");
    return 2;
  }

  std::string Root =
      (fs::temp_directory_path() / "er_bench_daemon_latency").string();

  std::printf("daemon ingestion latency: %llu reports arriving over a "
              "%llu ms virtual window, cycle cadence on a virtual clock\n",
              (unsigned long long)Reports, (unsigned long long)WindowMs);
  if (!Listen.empty())
    std::printf("live listener on %s with a 1 Hz /metrics scraper\n",
                Listen.c_str());
  std::printf("\n%12s %8s %10s %10s %10s %10s %16s %7s\n", "interval(ms)",
              "cycles", "mean(ms)", "p50(ms)", "p95(ms)", "max(ms)",
              "drain cpu(ms/cy)", "counts");

  bool AllOk = true;
  uint64_t Scrapes = 0, ScrapeFailures = 0;
  for (uint64_t IntervalMs : {10ull, 50ull, 250ull, 1000ull}) {
    Result R = runOnce(IntervalMs, Reports, WindowMs, Root, Listen);
    Scrapes += R.Scrapes;
    ScrapeFailures += R.ScrapeFailures;
    std::printf("%12llu %8llu %10.2f %10.2f %10.2f %10.2f %16.3f %7s\n",
                (unsigned long long)R.IntervalMs, (unsigned long long)R.Cycles,
                R.MeanMs, R.P50Ms, R.P95Ms, R.MaxMs, R.DrainCpuMsPerCycle,
                R.CountsOk ? "ok" : "FAIL");
    Json.add("latency_sweep")
        .param("drain_interval_ms", R.IntervalMs)
        .param("reports", Reports)
        .param("window_ms", WindowMs)
        .metric("cycles", R.Cycles)
        .metric("mean_ms", R.MeanMs)
        .metric("p50_ms", R.P50Ms)
        .metric("p95_ms", R.P95Ms)
        .metric("max_ms", R.MaxMs)
        .metric("drain_cpu_ms_per_cycle", R.DrainCpuMsPerCycle)
        .metric("counts_ok", static_cast<uint64_t>(R.CountsOk))
        .metric("scrapes", R.Scrapes)
        .metric("scrape_failures", R.ScrapeFailures);
    AllOk = AllOk && R.CountsOk && R.ScrapeFailures == 0;
  }

  if (!Listen.empty())
    std::printf("\nscrapes: %llu ok, %llu failed\n",
                (unsigned long long)Scrapes,
                (unsigned long long)ScrapeFailures);
  std::printf("\nexactly-once accounting across the sweep: %s\n",
              AllOk ? "yes" : "NO");
  if (int Rc = Json.flush())
    return Rc;
  return AllOk ? 0 : 1;
}
