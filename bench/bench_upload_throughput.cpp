//===- bench_upload_throughput.cpp - Wire ingestion under backpressure ------===//
//
// Measures the network report-upload front end (src/net/ReportClient,
// CollectorDaemon::handleUpload, docs/INGEST.md "Wire ingestion") in two
// phases:
//
//  1. *Wire throughput, exactly-once under 429s.* A real daemon with a
//     loopback listener starts with its spool pre-filled past the high
//     watermark, so every pusher's first attempt is deterministically
//     answered 429 (the control thread holds its first drain back long
//     enough for the throttles to land). Concurrent pusher threads then
//     retry-with-backoff until their frames are accepted, replaying every
//     fifth frame as a client whose 200 was lost would. The phase fails
//     unless every unique record is submitted exactly once — no loss, no
//     double count, nothing quarantined — with the throttle/retry path
//     demonstrably exercised.
//
//  2. *Adaptive vs fixed drain cadence, p99 arrival -> scheduled.* The
//     same bursty arrival schedule (bursts of reports spread over a few
//     hundred ms, quiet in between) runs against an adaptive daemon
//     (DrainIntervalMs as a maximum, compressed toward the floor by
//     pressure and drain volume) and a fixed-cadence daemon, both on a
//     VirtualClock so the sweep is deterministic. The phase fails unless
//     the adaptive schedule beats the fixed one on p99 latency.
//
// Usage: bench_upload_throughput [--pushers N] [--frames N] [--records N]
//                                [--reports N] [--bursts N] [--json FILE]
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "fleet/FleetScheduler.h"
#include "ingest/CollectorDaemon.h"
#include "ingest/ReportSpool.h"
#include "net/ReportClient.h"
#include "support/Rng.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

using namespace er;
namespace fs = std::filesystem;

namespace {

/// Unknown bug ids keep campaigns trivial (they complete inline), so the
/// measurements isolate the upload/drain path rather than reconstruction.
FleetFailureReport makeReport(uint64_t Machine, uint64_t Seq) {
  FleetFailureReport R;
  R.BugId = "synthetic-upload-" + std::to_string(Seq % 6);
  R.MachineId = Machine;
  R.Sequence = Seq;
  R.Failure.Kind = FailureKind::NullDeref;
  R.Failure.InstrGlobalId = static_cast<unsigned>(10 + Seq % 6);
  R.Failure.CallStack = {static_cast<unsigned>(1 + Seq % 4)};
  R.Failure.Message = "upload throughput bench";
  return R;
}

uint64_t totalOccurrences(const FleetScheduler &Sched) {
  uint64_t Total = 0;
  for (const Campaign &C : Sched.getCampaigns())
    Total += C.Occurrences;
  return Total;
}

double percentile(const std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Idx = static_cast<size_t>(P * (Sorted.size() - 1));
  return Sorted[Idx];
}

//===----------------------------------------------------------------------===//
// Phase 1: wire throughput under injected backpressure
//===----------------------------------------------------------------------===//

struct WireResult {
  double WallS = 0;
  uint64_t Frames = 0, Records = 0, Bytes = 0;
  uint64_t Attempts = 0, Throttled = 0, ReplayedFrames = 0;
  uint64_t DuplicatesDropped = 0;
  bool CountsOk = false;
};

WireResult runWire(unsigned Pushers, unsigned FramesPerPusher,
                   unsigned RecordsPerFrame, const std::string &Root) {
  fs::remove_all(Root);
  const std::string Spool = Root + "/spool";
  fs::create_directories(Spool);

  // Pre-fill past the high watermark: the daemon samples pressure on
  // start(), so the edge begins the bench shedding and the first round
  // of pushes meets real 429s.
  constexpr uint64_t Prefill = 6;
  for (uint64_t M = 0; M < Prefill; ++M) {
    SpoolWriter W(Spool, 900 + M);
    W.append(makeReport(900 + M, 1));
    W.flush();
  }

  FleetConfig FC;
  FC.RootSeed = 20260807;
  FleetScheduler Sched(FC);
  DaemonConfig DC;
  DC.Collector.SpoolDir = Spool;
  DC.Listen = "127.0.0.1:0";
  DC.Pressure.HighFiles = 4;
  DC.Pressure.LowFiles = 1;
  CollectorDaemon Daemon(DC, Sched);

  WireResult Res;
  std::string Err;
  if (!Daemon.start(&Err)) {
    std::fprintf(stderr, "daemon start failed: %s\n", Err.c_str());
    return Res;
  }
  uint16_t Port = Daemon.listenPort();

  std::atomic<uint64_t> Attempts{0}, Throttled{0}, Bytes{0}, Failures{0};
  std::atomic<unsigned> Done{0};
  auto T0 = std::chrono::steady_clock::now();

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < Pushers; ++T)
    Threads.emplace_back([&, T] {
      net::ReportClientConfig RC;
      RC.BackoffMs = 20;
      RC.BackoffCapMs = 200;
      RC.RetryAfterCapMs = 40; // Keep the bench measuring I/O, not hints.
      RC.MaxRetries = 50; // Throttling is expected; giving up is failure.
      RC.JitterSeed = T + 1;
      SpoolWriter W("", T + 1, 1);
      for (unsigned F = 0; F < FramesPerPusher; ++F) {
        for (unsigned R = 0; R < RecordsPerFrame; ++R)
          W.append(makeReport(T + 1, F * RecordsPerFrame + R + 1));
        std::string Frame = W.takeFrame();
        unsigned Sends = F % 5 == 4 ? 2u : 1u; // Replay every fifth frame.
        for (unsigned S = 0; S < Sends; ++S) {
          net::PushResult PR = net::pushReport("127.0.0.1", Port, Frame, RC);
          Attempts.fetch_add(PR.Attempts, std::memory_order_relaxed);
          Throttled.fetch_add(PR.Throttled, std::memory_order_relaxed);
          if (!PR.Ok) {
            Failures.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          Bytes.fetch_add(Frame.size(), std::memory_order_relaxed);
        }
      }
      Done.fetch_add(1, std::memory_order_release);
    });

  // Hold the first drain back long enough for the initial 429 round to
  // land, then cycle until the pushers are done and the spool is dry.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  while (Done.load(std::memory_order_acquire) < Pushers ||
         !listSpoolFiles(Spool).empty()) {
    if (!Daemon.runCycle(&Err)) {
      std::fprintf(stderr, "cycle failed: %s\n", Err.c_str());
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (std::thread &T : Threads)
    T.join();
  Daemon.runCycle(&Err); // Sweep anything the last check raced.
  Res.WallS =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();

  const uint64_t Unique =
      Prefill + uint64_t(Pushers) * FramesPerPusher * RecordsPerFrame;
  const CollectorStats &CS = Daemon.collectorStats();
  Res.Frames = uint64_t(Pushers) * FramesPerPusher;
  Res.Records = uint64_t(Pushers) * FramesPerPusher * RecordsPerFrame;
  Res.Bytes = Bytes.load();
  Res.Attempts = Attempts.load();
  Res.Throttled = Throttled.load();
  Res.ReplayedFrames = uint64_t(Pushers) * (FramesPerPusher / 5);
  Res.DuplicatesDropped = CS.DuplicatesDropped;
  Res.CountsOk = Failures.load() == 0 && CS.Submitted == Unique &&
                 CS.FilesQuarantined == 0 && totalOccurrences(Sched) == Unique &&
                 Res.Throttled > 0;
  fs::remove_all(Root);
  return Res;
}

//===----------------------------------------------------------------------===//
// Phase 2: adaptive vs fixed cadence on bursty arrivals
//===----------------------------------------------------------------------===//

struct Arrival {
  uint64_t AtNs = 0;
  uint64_t Machine = 0;
};

struct CadenceResult {
  uint64_t Cycles = 0;
  double P50Ms = 0, P95Ms = 0, P99Ms = 0, MaxMs = 0, MeanDelayMs = 0;
  bool CountsOk = false;
};

/// Bursty schedule: \p Bursts clusters, each spreading its share of
/// \p Reports over ~600ms of a 30s window, quiet in between — the regime
/// where a fixed cadence wastes its whole interval on stragglers.
std::vector<Arrival> makeBurstySchedule(uint64_t Reports, uint64_t Bursts,
                                        uint64_t StartNs) {
  constexpr uint64_t WindowMs = 30'000, BurstMs = 600, Machines = 4;
  Rng R(20260807);
  std::vector<Arrival> Schedule(Reports);
  uint64_t PerBurst = std::max<uint64_t>(1, Reports / Bursts);
  for (uint64_t I = 0; I < Reports; ++I) {
    uint64_t Burst = std::min(I / PerBurst, Bursts - 1);
    uint64_t BurstStartNs =
        StartNs + (Burst * WindowMs / Bursts) * 1'000'000ULL +
        R.nextBounded(2'000'000'000ULL / Bursts);
    Schedule[I].AtNs = BurstStartNs + R.nextBounded(BurstMs * 1'000'000ULL);
  }
  std::sort(Schedule.begin(), Schedule.end(),
            [](const Arrival &A, const Arrival &B) { return A.AtNs < B.AtNs; });
  for (uint64_t I = 0; I < Reports; ++I)
    Schedule[I].Machine = 1 + I % Machines;
  return Schedule;
}

CadenceResult runCadence(bool Adaptive, const std::vector<Arrival> &Schedule,
                         uint64_t IntervalMs, const std::string &Root) {
  fs::remove_all(Root);
  const std::string Spool = Root + "/spool";
  fs::create_directories(Spool);
  constexpr uint64_t Machines = 4;
  const uint64_t StartNs = Schedule.empty() ? 0 : Schedule.front().AtNs;

  VirtualClock Clock(StartNs);
  FleetConfig FC;
  FC.RootSeed = 20260807;
  FleetScheduler Sched(FC);
  DaemonConfig DC;
  DC.Collector.SpoolDir = Spool;
  DC.DrainIntervalMs = IntervalMs;
  DC.AdaptiveDrain = Adaptive;
  DC.Clock = &Clock;
  DC.Sleep = [&Clock](uint64_t Ms) { Clock.advanceNs(Ms * 1'000'000ULL); };
  CollectorDaemon Daemon(DC, Sched);

  CadenceResult Res;
  std::string Err;
  if (!Daemon.start(&Err)) {
    std::fprintf(stderr, "daemon start failed: %s\n", Err.c_str());
    return Res;
  }

  std::vector<SpoolWriter> Writers;
  for (uint64_t M = 1; M <= Machines; ++M)
    Writers.emplace_back(Spool, M);
  std::vector<uint64_t> NextSeq(Machines, 1);

  std::vector<double> LatenciesMs;
  LatenciesMs.reserve(Schedule.size());
  double DelaySumMs = 0;
  size_t Next = 0;
  uint64_t NowNs = StartNs;

  // The cycle cadence is simulated: each iteration publishes what
  // arrived during the preceding (fixed or adaptive) sleep, drains, then
  // asks the daemon how long it would sleep next.
  for (uint64_t Cycle = 0;; ++Cycle) {
    Clock.set(NowNs);
    size_t Published = 0;
    while (Next < Schedule.size() && Schedule[Next].AtNs <= NowNs) {
      const Arrival &A = Schedule[Next];
      size_t W = A.Machine - 1;
      Writers[W].append(makeReport(A.Machine, NextSeq[W]++));
      Writers[W].flush();
      LatenciesMs.push_back(double(NowNs - A.AtNs) / 1e6);
      ++Next;
      ++Published;
    }
    (void)Published;
    if (!Daemon.runCycle(&Err)) {
      std::fprintf(stderr, "cycle failed: %s\n", Err.c_str());
      break;
    }
    Res.Cycles = Cycle + 1;
    if (Next >= Schedule.size() && !Sched.hasPendingWork())
      break;
    uint64_t DelayMs = Daemon.nextDrainDelayMs();
    DelaySumMs += double(DelayMs);
    NowNs += DelayMs * 1'000'000ULL;
  }

  const CollectorStats &CS = Daemon.collectorStats();
  Res.CountsOk = CS.Submitted == Schedule.size() &&
                 CS.DuplicatesDropped == 0 && CS.FilesQuarantined == 0 &&
                 LatenciesMs.size() == Schedule.size();
  std::sort(LatenciesMs.begin(), LatenciesMs.end());
  Res.P50Ms = percentile(LatenciesMs, 0.50);
  Res.P95Ms = percentile(LatenciesMs, 0.95);
  Res.P99Ms = percentile(LatenciesMs, 0.99);
  Res.MaxMs = LatenciesMs.empty() ? 0 : LatenciesMs.back();
  Res.MeanDelayMs = Res.Cycles > 1 ? DelaySumMs / double(Res.Cycles - 1) : 0;
  fs::remove_all(Root);
  return Res;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Pushers = 4, FramesPerPusher = 25, RecordsPerFrame = 8;
  uint64_t Reports = 2000, Bursts = 8;
  bench::JsonReporter Json("bench_upload_throughput");
  for (int I = 1; I < argc; ++I) {
    if (int R = Json.parseArg(argc, argv, I)) {
      if (R < 0)
        return 2;
    } else if (!std::strcmp(argv[I], "--pushers") && I + 1 < argc)
      Pushers = static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
    else if (!std::strcmp(argv[I], "--frames") && I + 1 < argc)
      FramesPerPusher =
          static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
    else if (!std::strcmp(argv[I], "--records") && I + 1 < argc)
      RecordsPerFrame =
          static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
    else if (!std::strcmp(argv[I], "--reports") && I + 1 < argc)
      Reports = std::strtoull(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--bursts") && I + 1 < argc)
      Bursts = std::strtoull(argv[++I], nullptr, 10);
    else {
      std::printf("usage: bench_upload_throughput [--pushers N] [--frames N] "
                  "[--records N] [--reports N] [--bursts N] [--json FILE]\n");
      return 2;
    }
  }
  if (!Pushers || !FramesPerPusher || !RecordsPerFrame || !Reports ||
      !Bursts) {
    std::printf("all sizes must be positive\n");
    return 2;
  }

  std::string Root =
      (fs::temp_directory_path() / "er_bench_upload_throughput").string();

  std::printf("wire upload: %u pusher(s) x %u frame(s) x %u record(s), "
              "spool pre-filled past the high watermark\n",
              Pushers, FramesPerPusher, RecordsPerFrame);
  WireResult Wire = runWire(Pushers, FramesPerPusher, RecordsPerFrame,
                            Root + "_wire");
  double Mb = double(Wire.Bytes) / 1e6;
  std::printf("  %llu frame(s), %llu record(s) in %.2fs: %.0f frames/s, "
              "%.0f records/s, %.2f MB/s\n",
              (unsigned long long)Wire.Frames,
              (unsigned long long)Wire.Records, Wire.WallS,
              Wire.WallS > 0 ? double(Wire.Frames) / Wire.WallS : 0,
              Wire.WallS > 0 ? double(Wire.Records) / Wire.WallS : 0,
              Wire.WallS > 0 ? Mb / Wire.WallS : 0);
  std::printf("  backpressure: %llu attempt(s), %llu throttled (429), "
              "%llu frame(s) replayed, %llu duplicate record(s) dropped\n",
              (unsigned long long)Wire.Attempts,
              (unsigned long long)Wire.Throttled,
              (unsigned long long)Wire.ReplayedFrames,
              (unsigned long long)Wire.DuplicatesDropped);
  std::printf("  exactly-once accounting: %s\n\n",
              Wire.CountsOk ? "ok" : "FAIL");
  Json.add("wire_throughput")
      .param("pushers", Pushers)
      .param("frames_per_pusher", FramesPerPusher)
      .param("records_per_frame", RecordsPerFrame)
      .metric("wall_s", Wire.WallS)
      .metric("frames", Wire.Frames)
      .metric("records", Wire.Records)
      .metric("frames_per_s",
              Wire.WallS > 0 ? double(Wire.Frames) / Wire.WallS : 0)
      .metric("records_per_s",
              Wire.WallS > 0 ? double(Wire.Records) / Wire.WallS : 0)
      .metric("mb_per_s", Wire.WallS > 0 ? Mb / Wire.WallS : 0)
      .metric("push_attempts", Wire.Attempts)
      .metric("throttled_429", Wire.Throttled)
      .metric("replayed_frames", Wire.ReplayedFrames)
      .metric("duplicates_dropped", Wire.DuplicatesDropped)
      .metric("counts_ok", static_cast<uint64_t>(Wire.CountsOk));

  constexpr uint64_t IntervalMs = 250;
  std::printf("drain cadence: %llu report(s) in %llu burst(s), interval max "
              "%llu ms, virtual clock\n",
              (unsigned long long)Reports, (unsigned long long)Bursts,
              (unsigned long long)IntervalMs);
  std::vector<Arrival> Schedule =
      makeBurstySchedule(Reports, Bursts, 1'000'000'000'000ULL);
  std::printf("\n%10s %8s %10s %10s %10s %10s %14s %7s\n", "cadence",
              "cycles", "p50(ms)", "p95(ms)", "p99(ms)", "max(ms)",
              "mean delay(ms)", "counts");
  CadenceResult ByMode[2];
  for (bool Adaptive : {true, false}) {
    CadenceResult R =
        runCadence(Adaptive, Schedule, IntervalMs, Root + "_cadence");
    ByMode[Adaptive ? 0 : 1] = R;
    std::printf("%10s %8llu %10.2f %10.2f %10.2f %10.2f %14.2f %7s\n",
                Adaptive ? "adaptive" : "fixed",
                (unsigned long long)R.Cycles, R.P50Ms, R.P95Ms, R.P99Ms,
                R.MaxMs, R.MeanDelayMs, R.CountsOk ? "ok" : "FAIL");
    Json.add("cadence")
        .param("mode", Adaptive ? "adaptive" : "fixed")
        .param("interval_ms", IntervalMs)
        .param("reports", Reports)
        .param("bursts", Bursts)
        .metric("cycles", R.Cycles)
        .metric("p50_ms", R.P50Ms)
        .metric("p95_ms", R.P95Ms)
        .metric("p99_ms", R.P99Ms)
        .metric("max_ms", R.MaxMs)
        .metric("mean_delay_ms", R.MeanDelayMs)
        .metric("counts_ok", static_cast<uint64_t>(R.CountsOk));
  }
  const CadenceResult &Ad = ByMode[0], &Fx = ByMode[1];
  bool AdaptiveWins = Ad.P99Ms < Fx.P99Ms;
  double Speedup = Ad.P99Ms > 0 ? Fx.P99Ms / Ad.P99Ms : 0;
  std::printf("\nadaptive p99 %.2f ms vs fixed %.2f ms: %.2fx %s\n",
              Ad.P99Ms, Fx.P99Ms, Speedup,
              AdaptiveWins ? "(adaptive wins)" : "(ADAPTIVE DID NOT WIN)");
  Json.add("cadence_compare")
      .param("interval_ms", IntervalMs)
      .metric("adaptive_p99_ms", Ad.P99Ms)
      .metric("fixed_p99_ms", Fx.P99Ms)
      .metric("p99_speedup", Speedup)
      .metric("adaptive_beats_fixed", static_cast<uint64_t>(AdaptiveWins));

  bool AllOk = Wire.CountsOk && Ad.CountsOk && Fx.CountsOk && AdaptiveWins;
  std::printf("overall: %s\n", AllOk ? "ok" : "FAIL");
  if (int Rc = Json.flush())
    return Rc;
  return AllOk ? 0 : 1;
}
